package comm

import (
	"context"
	"errors"
	"testing"
	"time"

	"stance/internal/vtime"
)

// simWorld opens an inproc world on a fresh simulated clock.
func simWorld(t *testing.T, p int, model *Model) (*World, *vtime.Sim) {
	t.Helper()
	clk := vtime.NewSim()
	w, err := Open("inproc", p, TransportOptions{Model: model, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, clk
}

// TestDelayedDeliveryVirtualSemantics covers Model.Delay on the
// simulated clock with exact assertions instead of wall-clock bounds:
// the sender's virtual time does not move at all (Delay never blocks
// the sender), every message becomes visible exactly Delay after its
// send instant, and per-(source, tag) FIFO ordering survives the
// in-flight window. The test finishes in microseconds of real time no
// matter the delay.
func TestDelayedDeliveryVirtualSemantics(t *testing.T) {
	const delay = 5 * time.Millisecond
	w, clk := simWorld(t, 2, &Model{Delay: delay})

	const n = 10
	epoch := clk.Now()
	err := w.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 0 {
			start := clk.Now()
			for i := 0; i < n; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					return err
				}
			}
			if d := clk.Now().Sub(start); d != 0 {
				t.Errorf("sending %d delayed messages advanced the sender's clock by %v; Delay must not block the sender", n, d)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			// All sends happened at virtual time zero, so every message
			// is delivered exactly at epoch+delay — not before, not
			// after, not approximately.
			if d := clk.Now().Sub(epoch); d != delay {
				t.Errorf("message %d visible at virtual +%v, want exactly %v", i, d, delay)
			}
			if len(data) != 1 || data[0] != byte(i) {
				t.Errorf("message %d carried %v; FIFO order must survive the delay", i, data)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelayedDeliveryVirtualSpacing: sends issued at distinct virtual
// instants (separated by sender-side Latency charges) arrive exactly
// Delay after each send, preserving the inter-message spacing.
func TestDelayedDeliveryVirtualSpacing(t *testing.T) {
	const (
		delay   = 3 * time.Millisecond
		latency = time.Millisecond
	)
	w, clk := simWorld(t, 2, &Model{Delay: delay, Latency: latency})
	epoch := clk.Now()
	const n = 4
	err := w.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			// Each send charges exactly the latency to the sender.
			if d := clk.Now().Sub(epoch); d != n*latency {
				t.Errorf("%d sends advanced the sender by %v, want exactly %v", n, d, n*latency)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			// Message i leaves the wire after i+1 latency charges and
			// lands Delay later.
			want := time.Duration(i+1)*latency + delay
			if d := clk.Now().Sub(epoch); d != want {
				t.Errorf("message %d visible at virtual +%v, want exactly %v", i, d, want)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelayedDeliveryFIFOReal keeps the real-clock courier path
// covered: FIFO ordering and sender non-blocking are structural here
// (no wall-clock duration assertions, which belong to the virtual
// twin above).
func TestDelayedDeliveryFIFOReal(t *testing.T) {
	ws, err := NewWorld(2, &Model{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	const n = 10
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(data) != 1 || data[0] != byte(i) {
				t.Errorf("message %d carried %v; FIFO order must survive the delay", i, data)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelayedDeliveryMaskedRecv: the arrival-order executor drain
// works unchanged on a delayed medium, real or virtual.
func TestDelayedDeliveryMaskedRecv(t *testing.T) {
	run := func(t *testing.T, w *World) {
		err := w.SPMD(nil, func(c *Comm) error {
			if c.Rank() == 0 {
				mask := []bool{false, true, true}
				got := map[int]bool{}
				for i := 0; i < 2; i++ {
					src, data, err := c.RecvAnyOf(9, mask)
					if err != nil {
						return err
					}
					if got[src] {
						t.Errorf("received twice from rank %d", src)
					}
					got[src] = true
					mask[src] = false
					c.Release(data)
				}
				return nil
			}
			return c.Send(0, 9, []byte{byte(c.Rank())})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Run("real", func(t *testing.T) {
		ws, err := NewWorld(3, &Model{Delay: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		w := WrapWorld(ws, nil)
		defer w.Close()
		run(t, w)
	})
	t.Run("virtual", func(t *testing.T) {
		w, _ := simWorld(t, 3, &Model{Delay: time.Millisecond})
		run(t, w)
	})
}

// TestVirtualRankErrorCancelsInsteadOfStalling: a rank failing while a
// peer is blocked in a virtual-time receive must tear the section down
// through the SPMD context — not trip the clock's deadlock detector.
// The cancellation wakeup travels outside the clock (a context
// AfterFunc goroutine), so for a moment the counts look like a stall;
// the detector's grace window exists exactly for this.
func TestVirtualRankErrorCancelsInsteadOfStalling(t *testing.T) {
	w, _ := simWorld(t, 2, nil)
	wantErr := errors.New("rank 1 exploded")
	done := make(chan error, 1)
	go func() {
		done <- w.SPMD(nil, func(c *Comm) error {
			if c.Rank() == 0 {
				_, err := c.Recv(1, 5) // rank 1 never sends
				return err
			}
			return wantErr
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, wantErr) {
			t.Fatalf("section error %v does not include the failing rank's error", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked rank was not unwound by cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("section hung: rank error did not cancel the virtual-time receive")
	}
}

// TestVirtualRecvTimeout: on the simulated clock a receive deadline
// fires at the exact virtual instant, and a message scheduled before
// the deadline beats it.
func TestVirtualRecvTimeout(t *testing.T) {
	w, clk := simWorld(t, 2, &Model{Delay: 2 * time.Millisecond})
	epoch := clk.Now()
	err := w.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 1 {
			// First: time out with nothing in flight.
			if _, err := c.RecvTimeout(0, 5, time.Millisecond); err != ErrTimeout {
				t.Errorf("RecvTimeout with nothing in flight: %v, want ErrTimeout", err)
			}
			if d := clk.Now().Sub(epoch); d != time.Millisecond {
				t.Errorf("timeout fired at virtual +%v, want exactly 1ms", d)
			}
			// Tell the sender to go, then wait with a deadline beyond
			// the delivery delay: the message must win.
			if err := c.Send(0, 6, nil); err != nil {
				return err
			}
			data, err := c.RecvTimeout(0, 5, 50*time.Millisecond)
			if err != nil {
				return err
			}
			c.Release(data)
			return nil
		}
		if _, err := c.Recv(1, 6); err != nil {
			return err
		}
		return c.Send(1, 5, []byte{1})
	})
	if err != nil {
		t.Fatal(err)
	}
}
