package comm

import (
	"testing"
	"time"
)

// TestDelayedDeliverySemantics covers Model.Delay: the sender does not
// block for the delivery delay, no message becomes visible before its
// delay has elapsed, and per-(source, tag) FIFO ordering survives the
// in-flight window.
func TestDelayedDeliverySemantics(t *testing.T) {
	const delay = 5 * time.Millisecond
	ws, err := NewWorld(2, &Model{Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)

	const n = 10
	// Stamped before any send, so "first arrival >= start + delay" is a
	// valid lower bound on the receiver no matter how late its
	// goroutine is scheduled.
	epoch := time.Now()
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 0 {
			start := time.Now()
			for i := 0; i < n; i++ {
				if err := c.Send(1, 7, []byte{byte(i)}); err != nil {
					return err
				}
			}
			// All sends return without waiting out the delay; a huge
			// margin keeps this robust on loaded machines.
			if d := time.Since(start); d >= delay*n/2 {
				t.Errorf("sending %d delayed messages blocked %v; Delay must not block the sender", n, d)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if i == 0 {
				// The first arrival cannot precede its delivery delay,
				// measured from before the sends (a lower bound, so it
				// cannot flake on slow machines).
				if d := time.Since(epoch); d < delay {
					t.Errorf("first delayed message visible after %v, want >= %v", d, delay)
				}
			}
			if len(data) != 1 || data[0] != byte(i) {
				t.Errorf("message %d carried %v; FIFO order must survive the delay", i, data)
			}
			c.Release(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelayedDeliveryMaskedRecv: the arrival-order executor drain
// works unchanged on a delayed medium.
func TestDelayedDeliveryMaskedRecv(t *testing.T) {
	ws, err := NewWorld(3, &Model{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer CloseWorld(ws)
	err = SPMD(ws, func(c *Comm) error {
		if c.Rank() == 0 {
			mask := []bool{false, true, true}
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				src, data, err := c.RecvAnyOf(9, mask)
				if err != nil {
					return err
				}
				if got[src] {
					t.Errorf("received twice from rank %d", src)
				}
				got[src] = true
				mask[src] = false
				c.Release(data)
			}
			return nil
		}
		return c.Send(0, 9, []byte{byte(c.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
}
