package comm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"stance/internal/vtime"
)

// TransportConfig is the legacy flat transport configuration, kept as
// a compatibility shim over TransportOptions.
//
// Deprecated: use TransportOptions with Open. TransportConfig predates
// the tunable wire transport and can only carry the model and clock;
// Options converts it, and OpenConfig opens a world from it directly.
type TransportConfig struct {
	// Model is the network cost model (nil means a free network).
	Model *Model
	// Clock is the time source (nil means the real clock).
	Clock vtime.Clock
}

// Options maps the legacy configuration onto the options it is a
// subset of.
func (c TransportConfig) Options() TransportOptions {
	return TransportOptions{Model: c.Model, Clock: c.Clock}
}

// OpenConfig is Open for callers still holding a legacy
// TransportConfig.
//
// Deprecated: use Open with TransportOptions.
func OpenConfig(transport string, p int, cfg TransportConfig) (*World, error) {
	return Open(transport, p, cfg.Options())
}

// TransportFactory builds the endpoints of a p-rank world from
// validated options (factories ignore fields that do not apply to
// them; the in-process transport has no sockets to tune). The returned
// closer (which may be nil) releases resources the individual Comms do
// not own, such as a shared socket mesh.
type TransportFactory func(p int, opts TransportOptions) (comms []*Comm, closer func() error, err error)

var (
	transportMu sync.RWMutex
	transports  = map[string]TransportFactory{}
)

// RegisterTransport makes a transport available to Open under the given
// name, so new backends plug in without touching the callers. The
// built-in transports "inproc" and "tcp" are registered at package
// initialization. Registering a name twice panics, like net/sql driver
// registration.
func RegisterTransport(name string, factory TransportFactory) {
	if name == "" || factory == nil {
		panic("comm: RegisterTransport with empty name or nil factory")
	}
	transportMu.Lock()
	defer transportMu.Unlock()
	if _, dup := transports[name]; dup {
		panic(fmt.Sprintf("comm: transport %q registered twice", name))
	}
	transports[name] = factory
}

// Transports returns the sorted names of the registered transports.
func Transports() []string {
	transportMu.RLock()
	defer transportMu.RUnlock()
	names := make([]string, 0, len(transports))
	for name := range transports {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTransport("inproc", func(p int, opts TransportOptions) ([]*Comm, func() error, error) {
		comms, err := newInprocWorld(p, opts)
		return comms, nil, err
	})
	RegisterTransport("tcp", func(p int, opts TransportOptions) ([]*Comm, func() error, error) {
		return newTCPWorld(p, opts)
	})
}

// World is a first-class SPMD world: the set of communicators plus the
// lifecycle they share. It replaces the raw []*Comm + ad-hoc closer
// pair the library used to hand out.
type World struct {
	comms     []*Comm
	closer    func() error
	transport string

	mu       sync.Mutex
	active   bool // an SPMD section is running
	closed   bool
	closeErr error
}

// Open builds a world of p ranks on the named transport ("" selects
// "inproc"). The transport must have been registered with
// RegisterTransport. The options are validated here, before any
// factory runs, so a bad tuning fails identically on every transport.
func Open(transport string, p int, opts TransportOptions) (*World, error) {
	if transport == "" {
		transport = "inproc"
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Topology != nil && opts.Topology.P() != p {
		return nil, fmt.Errorf("comm: topology covers %d ranks, world has %d", opts.Topology.P(), p)
	}
	transportMu.RLock()
	factory, ok := transports[transport]
	transportMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("comm: unknown transport %q (registered: %s)",
			transport, strings.Join(Transports(), ", "))
	}
	comms, closer, err := factory(p, opts)
	if err != nil {
		return nil, fmt.Errorf("comm: transport %q: %w", transport, err)
	}
	if len(comms) != p {
		if closer != nil {
			closer()
		}
		return nil, fmt.Errorf("comm: transport %q built %d endpoints for %d ranks", transport, len(comms), p)
	}
	if opts.Topology != nil {
		// World endpoints learn the group structure here, once, for
		// every transport: the inter-group traffic counters live on the
		// endpoint, not in the transports.
		for _, c := range comms {
			c.topo = opts.Topology
		}
	}
	return &World{comms: comms, closer: closer, transport: transport}, nil
}

// WrapWorld adopts pre-built endpoints (for example from the legacy
// NewWorld/NewTCPWorld constructors) into a World. closer may be nil.
func WrapWorld(comms []*Comm, closer func() error) *World {
	return &World{comms: comms, closer: closer, transport: "custom"}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Transport returns the name the world was opened with.
func (w *World) Transport() string { return w.transport }

// Comm returns rank's endpoint.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= len(w.comms) {
		panic(fmt.Sprintf("comm: rank %d of %d", rank, len(w.comms)))
	}
	return w.comms[rank]
}

// Comms returns all endpoints, indexed by rank. The slice must not be
// modified.
func (w *World) Comms() []*Comm { return w.comms }

// SPMD runs f once per rank, each in its own goroutine, with ctx bound
// to every endpoint's blocking operations: cancelling ctx unblocks
// pending receives with ctx.Err() and tears the section down instead of
// deadlocking. It joins all ranks and returns their joined errors.
// Only one SPMD section may run on a world at a time; a concurrent
// call fails rather than racing on the context binding.
func (w *World) SPMD(ctx context.Context, f func(c *Comm) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.active {
		w.mu.Unlock()
		return fmt.Errorf("comm: an SPMD section is already running on this world")
	}
	w.active = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.active = false
		w.mu.Unlock()
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Ranks share a child context that is cancelled as soon as any
	// rank's function returns an error, so peers blocked in a
	// collective waiting on the failed rank unwind instead of
	// deadlocking the section.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for _, c := range w.comms {
		c.setContext(runCtx)
	}
	err := SPMD(w.comms, func(c *Comm) error {
		err := f(c)
		if err != nil {
			cancel()
		}
		return err
	})
	for _, c := range w.comms {
		c.setContext(nil)
	}
	return err
}

// Stats returns the total messages and payload bytes sent by all ranks
// since the world was opened.
func (w *World) Stats() (msgs, bytes int64) {
	for _, c := range w.comms {
		m, b := c.Stats()
		msgs += m
		bytes += b
	}
	return msgs, bytes
}

// InterGroupStats returns the total messages and payload bytes sent
// across group boundaries by all ranks since the world was opened —
// the traffic on the slow inter-group link of a two-level world.
// Always zero on a world opened without a Topology.
func (w *World) InterGroupStats() (msgs, bytes int64) {
	for _, c := range w.comms {
		m, b := c.InterStats()
		msgs += m
		bytes += b
	}
	return msgs, bytes
}

// Close shuts every endpoint down and releases transport resources.
// Pending receives fail with ErrClosed. Close is idempotent: repeated
// calls return the first call's error.
func (w *World) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	err := CloseWorld(w.comms)
	if w.closer != nil {
		if cerr := w.closer(); err == nil {
			err = cerr
		}
	}
	w.closeErr = err
	return err
}
