package comm

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"testing"
)

// mustEncodeBatch builds a wire frame for the tests, failing the test
// on encoder errors.
func mustEncodeBatch(t testing.TB, sections []tcpSection, codec uint8) []byte {
	t.Helper()
	frame, err := encodeTCPBatch(sections, codec)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestTcpFrameRoundTrip pins the frame codec: sections encoded under
// every codec decode back identical, raw frames are canonical
// byte-for-byte, and compressed frames self-describe through the
// header's codec tag (no receiver configuration involved).
func TestTcpFrameRoundTrip(t *testing.T) {
	cases := [][]tcpSection{
		nil,
		{{tag: 0, payload: nil}},
		{{tag: 7, payload: []byte("x")}},
		{{tag: -3, payload: []byte("hello")}, {tag: 1 << 20, payload: bytes.Repeat([]byte("ab"), 300)}},
		{{tag: hbTag, payload: nil}, {tag: 5, payload: []byte("data")}},
	}
	for _, codec := range []uint8{codecNone, codecGzip, codecFlate} {
		for i, sections := range cases {
			frame := mustEncodeBatch(t, sections, codec)
			got, err := decodeTCPFrame(frame)
			if err != nil {
				t.Fatalf("codec %d case %d: %v", codec, i, err)
			}
			if len(got) != len(sections) {
				t.Fatalf("codec %d case %d: %d sections, want %d", codec, i, len(got), len(sections))
			}
			for j := range got {
				if got[j].tag != sections[j].tag || !bytes.Equal(got[j].payload, sections[j].payload) {
					t.Errorf("codec %d case %d section %d: got (%d, %q), want (%d, %q)",
						codec, i, j, got[j].tag, got[j].payload, sections[j].tag, sections[j].payload)
				}
			}
		}
	}
}

// TestTcpFrameSmallBatchesStayRaw pins the compressMin floor: a tiny
// batch under a compressing codec still goes out raw (header codec
// none), because codec setup costs more than it saves.
func TestTcpFrameSmallBatchesStayRaw(t *testing.T) {
	frame := mustEncodeBatch(t, []tcpSection{{tag: 1, payload: []byte("tiny")}}, codecGzip)
	if frame[0] != codecNone {
		t.Errorf("small batch framed with codec %d, want raw", frame[0])
	}
	big := mustEncodeBatch(t, []tcpSection{{tag: 1, payload: bytes.Repeat([]byte("compress me "), 64)}}, codecGzip)
	if big[0] != codecGzip {
		t.Errorf("compressible batch framed with codec %d, want gzip", big[0])
	}
}

// TestTcpFrameRejects pins the decoder's failure modes: reserved flag
// bits, the unassigned codec tag, truncated and oversized bodies, and
// sections that do not tile the body.
func TestTcpFrameRejects(t *testing.T) {
	valid := mustEncodeBatch(t, []tcpSection{{tag: 2, payload: []byte("ok")}}, codecNone)
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:frameHdr-1],
		"reserved flags": mutate(func(b []byte) []byte { b[0] |= 0x80; return b }),
		"codec 3":        mutate(func(b []byte) []byte { b[0] = codecBits; return b }),
		"truncated body": valid[:len(valid)-1],
		"trailing junk":  append(append([]byte(nil), valid...), 0xff),
		"huge bodyLen": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[1:], uint32(maxBatch+1))
			return b
		}),
		"section overruns body": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[frameHdr+4:], 1<<20)
			return b
		}),
	}
	for name, frame := range cases {
		if _, err := decodeTCPFrame(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestTcpFrameDecompressionBounded pins the zip-bomb guard: a
// compressed body that inflates past the batch limit is rejected
// instead of ballooning memory. The limit is lowered for the test so
// pinning the guard does not require inflating an actual gigabyte.
func TestTcpFrameDecompressionBounded(t *testing.T) {
	defer func(old int64) { maxDecodedBatch = old }(maxDecodedBatch)
	maxDecodedBatch = 1 << 16

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(make([]byte, maxDecodedBatch+1)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHdr+buf.Len())
	frame[0] = codecGzip
	binary.LittleEndian.PutUint32(frame[1:], uint32(buf.Len()))
	copy(frame[frameHdr:], buf.Bytes())
	if _, err := decodeTCPFrame(frame); err == nil {
		t.Error("over-limit decompression decoded without error")
	}
}

// FuzzTcpFrameDecode fuzzes the TCP batch decoder — frame header,
// per-frame compression tag, section boundaries — with two properties:
// no input panics or over-allocates (decompression is capped at
// maxBatch), and any accepted raw frame is canonical: re-encoding its
// sections under codec none reproduces the input byte for byte. Run
// under `go test -fuzz=FuzzTcpFrameDecode ./internal/comm`; the seed
// corpus here and in testdata/fuzz keeps the interesting shapes
// exercised on every ordinary `go test` run.
func FuzzTcpFrameDecode(f *testing.F) {
	f.Add([]byte{})                      // too short for a header
	f.Add([]byte{0, 0, 0, 0, 0})         // empty raw frame, canonical
	f.Add([]byte{3, 0, 0, 0, 0})         // unassigned codec tag
	f.Add([]byte{0x80, 0, 0, 0, 0})      // reserved flag bits
	f.Add([]byte{0, 255, 255, 255, 255}) // absurd bodyLen, must not allocate it
	seed := func(sections []tcpSection, codec uint8) {
		frame, err := encodeTCPBatch(sections, codec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	seed([]tcpSection{{tag: 1, payload: []byte("a")}}, codecNone)
	seed([]tcpSection{{tag: -1, payload: nil}, {tag: 2, payload: []byte("bc")}}, codecNone)
	seed([]tcpSection{{tag: hbTag, payload: nil}}, codecNone)
	seed([]tcpSection{{tag: 9, payload: bytes.Repeat([]byte("gzip body "), 40)}}, codecGzip)
	seed([]tcpSection{{tag: 9, payload: bytes.Repeat([]byte("flate body "), 40)}}, codecFlate)
	f.Add(append([]byte{1, 3, 0, 0, 0}, "bad"...)) // gzip codec, garbage body
	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := decodeTCPFrame(data)
		if err != nil {
			return
		}
		if data[0] != codecNone {
			// Compressed frames are not canonical (codec levels differ);
			// accepted ones only need a consistent section decode.
			return
		}
		round, err := encodeTCPBatch(sections, codecNone)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(round, data) {
			t.Fatalf("raw frame not canonical:\n in: %x\nout: %x", data, round)
		}
	})
}
