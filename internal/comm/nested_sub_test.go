package comm

import (
	"fmt"
	"testing"
)

// TestNestedSubWorlds: a Sub of a Sub must translate ranks, tags and
// masks through BOTH levels — straight to the root world, with no
// state left behind in the middle layer — on both built-in transports.
// The CI test job runs this under the race detector, covering the
// concurrent two-level translation paths.
func TestNestedSubWorlds(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) { testNestedSubWorlds(t, transport) })
	}
}

func testNestedSubWorlds(t *testing.T, transport string) {
	world, err := Open(transport, 5, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	outer := []int{0, 2, 3, 4} // world rank 1 parked at level 1
	inner := []int{1, 2, 3}    // outer ranks -> world ranks {2, 3, 4}
	const tag = 0x97
	err = world.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 1 {
			// Noise from outside both levels, on the inner tag: must stay
			// queued on the world comm, invisible to the nested receives.
			return c.Send(2, tag, []byte{0xee})
		}
		sub, err := c.Sub(outer)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// A level-1 member outside level 2: its traffic on the same
			// tag must not leak into the inner world either.
			return sub.Send(1, tag, []byte{0xdd}) // outer rank 1 = world 2
		}
		nested, err := sub.Sub(inner)
		if err != nil {
			return err
		}
		if nested.WorldSize() != 5 || nested.WorldRank() != c.Rank() {
			return fmt.Errorf("world %d: nested WorldSize=%d WorldRank=%d",
				c.Rank(), nested.WorldSize(), nested.WorldRank())
		}
		// Collective two levels deep: payloads are world ranks, indexed
		// by inner rank.
		parts, err := nested.AllGather(tag, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for i, w := range []byte{2, 3, 4} {
			if len(parts[i]) != 1 || parts[i][0] != w {
				return fmt.Errorf("world %d: nested allgather[%d] = %v, want [%d]", c.Rank(), i, parts[i], w)
			}
		}
		// Masked receive through two translations: inner rank 0 receives
		// from inner ranks 1 and 2 only (world 3 and 4).
		if nested.Rank() == 0 {
			if err := nestedMaskedRecv(nested, tag); err != nil {
				return err
			}
			// Both outside messages are still queued where they were
			// addressed: the world comm and the outer sub.
			if data, err := c.Recv(1, tag); err != nil || data[0] != 0xee {
				return fmt.Errorf("world noise: data=%v err=%v", data, err)
			}
			if data, err := sub.Recv(0, tag); err != nil || data[0] != 0xdd {
				return fmt.Errorf("outer message: data=%v err=%v", data, err)
			}
			return nil
		}
		return nested.Send(0, tag, []byte{byte(100 + nested.Rank())})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every send above entered the network exactly once; each endpoint's
	// counters fold the nested traffic into the root's (TransportStats
	// and Stats both delegate through the chain).
	if transport == "tcp" {
		stats, ok := world.TransportStats()
		if !ok {
			t.Fatal("tcp world should report wire counters")
		}
		if stats.NTx == 0 || stats.NRx == 0 {
			t.Errorf("nested traffic invisible to wire counters: %+v", stats)
		}
	}
}

func nestedMaskedRecv(nested *Comm, tag int) error {
	got := map[int]byte{}
	mask := []bool{false, true, true}
	for i := 0; i < 2; i++ {
		src, data, err := nested.RecvAnyOf(tag, mask)
		if err != nil {
			return err
		}
		got[src] = data[0]
		nested.Release(data)
		mask[src] = false
	}
	if got[1] != 101 || got[2] != 102 {
		return fmt.Errorf("nested masked receives got %v, want 1->101, 2->102", got)
	}
	return nil
}

// TestNestedSubTransportStatsDelegate: a nested sub endpoint reports
// its root endpoint's wire counters — there is one mesh per world, and
// the delegation must cross both levels.
func TestNestedSubTransportStatsDelegate(t *testing.T) {
	world, err := Open("tcp", 3, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	err = world.SPMD(nil, func(c *Comm) error {
		sub, err := c.Sub([]int{0, 1, 2})
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			return nil
		}
		nested, err := sub.Sub([]int{0, 1})
		if err != nil {
			return err
		}
		if nested.Rank() == 0 {
			if err := nested.Send(1, 0x98, make([]byte, 32)); err != nil {
				return err
			}
		} else {
			data, err := nested.Recv(0, 0x98)
			if err != nil {
				return err
			}
			nested.Release(data)
		}
		rootStats, rootOK := c.TransportStats()
		nestedStats, nestedOK := nested.TransportStats()
		if !rootOK || !nestedOK {
			return fmt.Errorf("world %d: stats ok = %v/%v, want both", c.Rank(), rootOK, nestedOK)
		}
		if rootStats != nestedStats {
			return fmt.Errorf("world %d: nested stats %+v != root stats %+v", c.Rank(), nestedStats, rootStats)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
