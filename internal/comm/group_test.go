package comm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"stance/internal/vtime"
)

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(nil); err == nil {
		t.Error("empty topology should fail")
	}
	if _, err := NewTopology([]int{0, -1}); err == nil {
		t.Error("negative group id should fail")
	}
	if _, err := NewTopology([]int{0, 2}); err == nil {
		t.Error("gap in group ids should fail")
	}
	topo, err := NewTopology([]int{1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if topo.P() != 5 || topo.Groups() != 2 {
		t.Fatalf("P=%d Groups=%d, want 5/2", topo.P(), topo.Groups())
	}
	if topo.Leader(0) != 1 || topo.Leader(1) != 0 {
		t.Errorf("leaders = %d,%d, want 1,0 (lowest member rank)", topo.Leader(0), topo.Leader(1))
	}
	if !topo.SameGroup(0, 2) || topo.SameGroup(0, 1) {
		t.Error("SameGroup misclassifies")
	}
	if _, err := ContiguousGroups(4, 5); err == nil {
		t.Error("more groups than ranks should fail")
	}
	ct, err := ContiguousGroups(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1} // first p%groups groups take the extra rank
	for r, g := range want {
		if ct.GroupOf(r) != g {
			t.Fatalf("ContiguousGroups(5,2) = %v at rank %d, want %v", ct.GroupOf(r), r, want)
		}
	}
}

func TestInterModelRequiresTopology(t *testing.T) {
	opts := TransportOptions{InterModel: &Model{Latency: time.Millisecond}}
	if err := opts.Validate(); err == nil {
		t.Error("InterModel without Topology should fail validation")
	}
	topo, err := ContiguousGroups(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open("inproc", 4, TransportOptions{Topology: topo}); err == nil {
		t.Error("topology over 2 ranks should not open a 4-rank world")
	}
}

// TestHierarchicalPricingExact: on a simulated clock, a two-level
// model prices every message exactly — an intra-group send costs the
// base model, a cross-group send the inter-group model, and nothing
// else moves the clock.
func TestHierarchicalPricingExact(t *testing.T) {
	topo, err := NewTopology([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := vtime.NewSim()
	w, err := Open("inproc", 4, TransportOptions{
		Model:      &Model{Latency: time.Millisecond},
		InterModel: &Model{Latency: 10 * time.Millisecond},
		Topology:   topo,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := clk.Now()
	err = w.SPMD(nil, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// One intra-group send (1 ms), one inter-group send (10 ms),
			// serialized on the sender.
			if err := c.Send(1, 7, []byte("fast")); err != nil {
				return err
			}
			return c.Send(2, 7, []byte("slow"))
		case 1, 2:
			_, err := c.Recv(0, 7)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(start); got != 11*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want exactly 11ms (1ms intra + 10ms inter)", got)
	}
	msgs, bs := w.InterGroupStats()
	if msgs != 1 || bs != 4 {
		t.Errorf("inter-group stats = %d msgs / %d bytes, want 1/4", msgs, bs)
	}
	if m, _ := w.Comm(0).InterStats(); m != 1 {
		t.Errorf("rank 0 inter msgs = %d, want 1", m)
	}
	if m, _ := w.Comm(1).InterStats(); m != 0 {
		t.Errorf("rank 1 inter msgs = %d, want 0", m)
	}
}

// TestHierarchicalMulticastPricing: a multicast spanning groups pays
// each medium once when it supports multicast — and the inter-group
// counters see one crossing per remote destination.
func TestHierarchicalMulticastPricing(t *testing.T) {
	topo, err := NewTopology([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	clk := vtime.NewSim()
	w, err := Open("inproc", 4, TransportOptions{
		Model:      &Model{Latency: time.Millisecond, Multicast: true},
		InterModel: &Model{Latency: 10 * time.Millisecond, Multicast: true},
		Topology:   topo,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := clk.Now()
	payload := []byte{0xab}
	err = w.SPMD(nil, func(c *Comm) error {
		if c.Rank() == 0 {
			// One charge on the fast medium (rank 1) + one on the slow
			// backbone (ranks 2 and 3 share the multicast): 11 ms.
			return c.Multicast([]int{1, 2, 3}, 9, payload)
		}
		_, err := c.Recv(0, 9)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(start); got != 11*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want exactly 11ms (one charge per medium)", got)
	}
	msgs, _ := w.InterGroupStats()
	if msgs != 2 {
		t.Errorf("inter-group crossings = %d, want 2 (one per remote destination)", msgs)
	}
}

// TestUniformTopologyMatchesFlat: with a topology but no InterModel,
// pricing and virtual timing are bit-identical to the flat world — the
// hierarchy paths must be invisible on a uniform network.
func TestUniformTopologyMatchesFlat(t *testing.T) {
	run := func(topo *Topology) time.Duration {
		clk := vtime.NewSim()
		w, err := Open("inproc", 4, TransportOptions{
			Model:    &Model{Latency: time.Millisecond, Bandwidth: 1e6},
			Topology: topo,
			Clock:    clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		start := clk.Now()
		err = w.SPMD(nil, func(c *Comm) error {
			parts, err := c.AllGather(3, []byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			for i := range parts {
				if parts[i][0] != byte(i) {
					return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), i, parts[i])
				}
			}
			return c.Barrier(4)
		})
		if err != nil {
			t.Fatal(err)
		}
		return clk.Now().Sub(start)
	}
	topo, err := ContiguousGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	flat, hier := run(nil), run(topo)
	if flat != hier {
		t.Errorf("uniform-model wall time differs: flat %v vs topology %v", flat, hier)
	}
}

// TestHybridTransport: the hybrid transport routes intra-group
// messages through shared memory — the wire counters must only ever
// see the inter-group traffic — while collectives behave exactly as on
// the flat transports.
func TestHybridTransport(t *testing.T) {
	if _, err := Open("hybrid", 4, TransportOptions{}); err == nil {
		t.Fatal("hybrid without a topology should fail")
	}
	topo, err := ContiguousGroups(4, 2) // groups {0,1} and {2,3}
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open("hybrid", 4, TransportOptions{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.SPMD(nil, func(c *Comm) error {
		// Ring exchange: 0→1 and 2→3 stay inside their groups, 1→2 and
		// 3→0 cross. Payloads prove delivery on both paths.
		next, prev := (c.Rank()+1)%4, (c.Rank()+3)%4
		msg := []byte(fmt.Sprintf("from-%d", c.Rank()))
		if err := c.Send(next, 5, msg); err != nil {
			return err
		}
		got, err := c.Recv(prev, 5)
		if err != nil {
			return err
		}
		defer c.Release(got)
		if want := fmt.Sprintf("from-%d", prev); !bytes.Equal(got, []byte(want)) {
			return fmt.Errorf("rank %d: got %q, want %q", c.Rank(), got, want)
		}
		// Collectives span both paths.
		parts, err := c.AllGather(6, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for i := range parts {
			if len(parts[i]) != 1 || parts[i][0] != byte(i) {
				return fmt.Errorf("rank %d: allgather[%d] = %v", c.Rank(), i, parts[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, bs := w.InterGroupStats()
	if msgs < 2 || bs == 0 {
		t.Errorf("inter-group stats = %d msgs / %d bytes, want at least the 2 ring crossings", msgs, bs)
	}
	stats, ok := w.TransportStats()
	if !ok {
		t.Fatal("hybrid world should report wire counters")
	}
	// Every socket message was an inter-group message: the ring's two
	// crossings plus the collectives' — never the intra-group traffic.
	if stats.NTx != msgs {
		t.Errorf("wire NTx = %d, inter-group msgs = %d: intra-group traffic leaked onto the sockets", stats.NTx, msgs)
	}
	if msgsAll, _ := w.Stats(); msgsAll <= msgs {
		t.Errorf("total msgs %d should exceed inter-group msgs %d", msgsAll, msgs)
	}
}

// TestHybridRecvTimeoutAndKill: mailbox-level features — timed
// receives and crash injection — survive the hybrid composition.
func TestHybridRecvTimeoutAndKill(t *testing.T) {
	topo, err := ContiguousGroups(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open("hybrid", 2, TransportOptions{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Comm(0).RecvTimeout(1, 3, time.Millisecond); err == nil {
		t.Error("timed receive with no sender should time out")
	}
	if err := KillEndpoint(w.Comm(1)); err != nil {
		t.Errorf("hybrid endpoints should support kill injection: %v", err)
	}
	if err := w.Comm(1).Send(0, 3, nil); err == nil {
		t.Error("send from a killed endpoint should fail")
	}
}
