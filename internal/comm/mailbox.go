package comm

import (
	"context"
	"sync"
	"time"
)

// msgKey matches messages by (source, tag), the P4-style matching rule.
type msgKey struct {
	src, tag int
}

// mailbox is a rank's incoming-message store: per-(src, tag) FIFO
// queues with blocking receive. Both transports deliver into it.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a message; the payload must already be owned by the
// mailbox (callers copy user buffers).
func (m *mailbox) deliver(src, tag int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := msgKey{src, tag}
	m.queues[k] = append(m.queues[k], data)
	m.cond.Broadcast()
	return nil
}

// watchCancel arranges for a cancelled context to wake every waiter on
// the mailbox, so blocked receives can observe ctx.Err() instead of
// sleeping forever. It returns a stop function that must be called when
// the receive completes. Receivers register it lazily — only once they
// are actually about to block — so a receive satisfied from the queue
// pays nothing for cancellation support. If ctx is already cancelled
// the callback fires asynchronously; it only blocks on m.mu, which the
// caller releases inside cond.Wait, so there is no deadlock.
func (m *mailbox) watchCancel(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
}

// recv blocks until a (src, tag) message is available, the mailbox is
// closed, or ctx is cancelled (nil ctx blocks indefinitely).
func (m *mailbox) recv(ctx context.Context, src, tag int) ([]byte, error) {
	cancellable := ctx != nil && ctx.Done() != nil
	var stop func() bool
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if cancellable {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if stop == nil {
				stop = m.watchCancel(ctx)
			}
		}
		m.cond.Wait()
	}
}

// recvTimeout is recv with a deadline; it returns ErrTimeout when the
// deadline passes without a matching message.
func (m *mailbox) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		m.cond.Wait()
	}
}

// recvAny blocks until any message with the tag is available,
// preferring the lowest source rank for determinism. It unblocks with
// an error when the mailbox closes or ctx is cancelled.
func (m *mailbox) recvAny(ctx context.Context, tag int) (int, []byte, error) {
	cancellable := ctx != nil && ctx.Done() != nil
	var stop func() bool
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		bestSrc := -1
		for k, q := range m.queues {
			if k.tag == tag && len(q) > 0 && (bestSrc < 0 || k.src < bestSrc) {
				bestSrc = k.src
			}
		}
		if bestSrc >= 0 {
			k := msgKey{bestSrc, tag}
			q := m.queues[k]
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return bestSrc, data, nil
		}
		if m.closed {
			return 0, nil, ErrClosed
		}
		if cancellable {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			if stop == nil {
				stop = m.watchCancel(ctx)
			}
		}
		m.cond.Wait()
	}
}

// close fails all pending and future receives.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
