package comm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stance/internal/vtime"
)

// msgKey matches messages by (source, tag), the P4-style matching rule.
type msgKey struct {
	src, tag int
}

// msgq is one (source, tag) stream's FIFO. It is a slice drained by a
// head index instead of re-slicing, so the backing array is reused once
// the queue empties: a steady-state deliver/recv ping-pong touches no
// allocator at all.
type msgq struct {
	frames [][]byte
	head   int
}

func (q *msgq) empty() bool { return q.head == len(q.frames) }

func (q *msgq) push(b []byte) { q.frames = append(q.frames, b) }

func (q *msgq) pop() []byte {
	b := q.frames[q.head]
	q.frames[q.head] = nil // drop the reference for the pool/GC
	q.head++
	if q.head == len(q.frames) {
		q.frames = q.frames[:0]
		q.head = 0
	}
	return b
}

// maxPooled bounds the number of idle payload buffers a mailbox keeps
// for reuse; beyond that, returned buffers fall to the GC.
const maxPooled = 64

// mailbox is a rank's incoming-message store: per-(src, tag) FIFO
// queues with blocking receive. Both transports deliver into it. It
// also owns the rank's receive-buffer pool: delivery paths take
// payload buffers from getBuf and receivers hand them back through
// putBuf (via Comm.Release), so the steady-state executor data path
// recycles buffers instead of allocating per message.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey]*msgq
	free   [][]byte
	closed bool
	// closeErr is what pending and future receives fail with once the
	// mailbox is closed: ErrClosed on a normal shutdown, ErrKilled when
	// the endpoint was crash-injected.
	closeErr error

	// dead marks sources the transport's liveness layer has declared
	// failed (missed heartbeats). Queued messages from a dead source
	// stay receivable — they were delivered before the failure — but a
	// receive that would block on a dead source fails with ErrPeerDead
	// instead, turning transport liveness into an immediate failure
	// signal for the checkpoint gate. Grown lazily; nil when the
	// transport has no liveness layer.
	dead []bool

	// clock supplies deadlines; sim is non-nil when it is a simulated
	// clock, in which case blocked receivers take part in the clock's
	// waiter accounting: simWaiting counts the waiters currently marked
	// blocked in the clock. Every wakeup path (deliver, close, cancel,
	// deadline) goes through wakeLocked, which retires those marks
	// atomically with the broadcast — the clock must see the woken
	// waiters as runnable before it can advance again.
	clock      vtime.Clock
	sim        *vtime.Sim
	simWaiting int
	wakeGen    uint64
}

func newMailbox(clock vtime.Clock) *mailbox {
	if clock == nil {
		clock = vtime.Real{}
	}
	m := &mailbox{queues: make(map[msgKey]*msgq), clock: clock, sim: vtime.AsSim(clock)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// waitLocked parks the caller on the mailbox condition. On a simulated
// clock the waiter is marked blocked so the clock can auto-advance; the
// mark is retired either by the waker (wakeLocked) or, if the waker got
// there first, not at all — simWaiting tracks exactly the marks still
// outstanding.
func (m *mailbox) waitLocked() {
	if m.sim == nil {
		m.cond.Wait()
		return
	}
	m.simWaiting++
	gen := m.wakeGen
	m.sim.Block()
	m.cond.Wait()
	// A wakeLocked since we parked has already retired every
	// outstanding mark (including ours, and possibly before we actually
	// woke); only a wake that bypassed wakeLocked — which none do —
	// would leave our own mark to retire here.
	if m.wakeGen == gen {
		m.simWaiting--
		m.sim.Unblock(1)
	}
}

// wakeLocked wakes every waiter, first handing their runnable tokens
// back to the simulated clock (no-op on the real clock). Every path
// that can satisfy or abort a wait must use it instead of a bare
// Broadcast.
func (m *mailbox) wakeLocked() {
	if m.sim != nil && m.simWaiting > 0 {
		m.sim.Unblock(m.simWaiting)
		m.simWaiting = 0
	}
	m.wakeGen++
	m.cond.Broadcast()
}

// getBuf returns a payload buffer of length n, reusing a pooled one
// when possible. One pool serves all message sizes on a rank, so the
// newest-first scan skips entries too small for this request instead
// of discarding them — small control-frame buffers stay pooled for
// small requests, and in the homogeneous steady state the newest entry
// fits immediately.
func (m *mailbox) getBuf(n int) []byte {
	m.mu.Lock()
	for i := len(m.free) - 1; i >= 0; i-- {
		if cap(m.free[i]) < n {
			continue
		}
		b := m.free[i]
		last := len(m.free) - 1
		m.free[i] = m.free[last]
		m.free[last] = nil
		m.free = m.free[:last]
		m.mu.Unlock()
		return b[:n]
	}
	m.mu.Unlock()
	return make([]byte, n)
}

// putBuf returns a delivered payload buffer to the pool. The caller
// must not touch the buffer afterwards.
func (m *mailbox) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	m.mu.Lock()
	if len(m.free) < maxPooled {
		m.free = append(m.free, b[:0])
	}
	m.mu.Unlock()
}

// markPeerDead records a transport-level death of src and wakes every
// waiter so receives blocked on src can fail with ErrPeerDead.
func (m *mailbox) markPeerDead(src int) {
	m.mu.Lock()
	if src >= len(m.dead) {
		grown := make([]bool, src+1)
		copy(grown, m.dead)
		m.dead = grown
	}
	m.dead[src] = true
	m.wakeLocked()
	m.mu.Unlock()
}

// deadLocked reports whether src has been declared dead.
func (m *mailbox) deadLocked(src int) bool {
	return src >= 0 && src < len(m.dead) && m.dead[src]
}

// allDeadLocked reports whether every source the mask admits is dead —
// the condition under which a masked receive can never complete. A nil
// mask admits every source including self, which is never marked, so
// it always reports false.
func (m *mailbox) allDeadLocked(mask []bool) bool {
	if mask == nil {
		return false
	}
	admitted := false
	for src, on := range mask {
		if !on {
			continue
		}
		admitted = true
		if !m.deadLocked(src) {
			return false
		}
	}
	return admitted
}

// closedErrLocked is the error receives fail with after close.
func (m *mailbox) closedErrLocked() error {
	if m.closeErr != nil {
		return m.closeErr
	}
	return ErrClosed
}

// deliver appends a message; the payload must already be owned by the
// mailbox (callers copy user buffers).
func (m *mailbox) deliver(src, tag int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := msgKey{src, tag}
	q := m.queues[k]
	if q == nil {
		q = &msgq{}
		m.queues[k] = q
	}
	q.push(data)
	m.wakeLocked()
	return nil
}

// watchCancel arranges for a cancelled context to wake every waiter on
// the mailbox, so blocked receives can observe ctx.Err() instead of
// sleeping forever. It returns a stop function that must be called when
// the receive completes. Receivers register it lazily — only once they
// are actually about to block — so a receive satisfied from the queue
// pays nothing for cancellation support. If ctx is already cancelled
// the callback fires asynchronously; it only blocks on m.mu, which the
// caller releases inside cond.Wait, so there is no deadlock.
func (m *mailbox) watchCancel(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.wakeLocked()
		m.mu.Unlock()
	})
}

// recv blocks until a (src, tag) message is available, the mailbox is
// closed, or ctx is cancelled (nil ctx blocks indefinitely).
func (m *mailbox) recv(ctx context.Context, src, tag int) ([]byte, error) {
	cancellable := ctx != nil && ctx.Done() != nil
	var stop func() bool
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; q != nil && !q.empty() {
			return q.pop(), nil
		}
		if m.closed {
			return nil, m.closedErrLocked()
		}
		if m.deadLocked(src) {
			return nil, fmt.Errorf("comm: recv from rank %d: %w", src, ErrPeerDead)
		}
		if cancellable {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if stop == nil {
				stop = m.watchCancel(ctx)
			}
		}
		m.waitLocked()
	}
}

// recvTimeout is recv with a deadline on the mailbox clock; it returns
// ErrTimeout when the deadline passes without a matching message. On a
// simulated clock the deadline is a scheduled event like any other, so
// failure-detection timeouts fire at exact virtual instants.
func (m *mailbox) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	deadline := m.clock.Now().Add(d)
	timer := m.clock.AfterFunc(d, func() {
		m.mu.Lock()
		m.wakeLocked()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; q != nil && !q.empty() {
			return q.pop(), nil
		}
		if m.closed {
			return nil, m.closedErrLocked()
		}
		if m.deadLocked(src) {
			return nil, fmt.Errorf("comm: recv from rank %d: %w", src, ErrPeerDead)
		}
		if !m.clock.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		m.waitLocked()
	}
}

// match returns the lowest source with a queued message for tag that
// the mask admits (nil mask admits every source), or -1.
func (m *mailbox) match(tag int, mask []bool) int {
	bestSrc := -1
	for k, q := range m.queues {
		if k.tag != tag || q.empty() {
			continue
		}
		if mask != nil && (k.src < 0 || k.src >= len(mask) || !mask[k.src]) {
			continue
		}
		if bestSrc < 0 || k.src < bestSrc {
			bestSrc = k.src
		}
	}
	return bestSrc
}

// recvAny blocks until any message with the tag is available,
// preferring the lowest source rank for determinism. It unblocks with
// an error when the mailbox closes or ctx is cancelled.
func (m *mailbox) recvAny(ctx context.Context, tag int) (int, []byte, error) {
	return m.recvAnyOf(ctx, tag, nil)
}

// recvAnyOf is recvAny restricted to sources the mask admits — the
// arrival-order receive primitive: the executor marks the peers it is
// still missing and unpacks whichever of them delivers first, while
// messages from already-served peers (which belong to a later
// operation) stay queued.
func (m *mailbox) recvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	cancellable := ctx != nil && ctx.Done() != nil
	var stop func() bool
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if src := m.match(tag, mask); src >= 0 {
			return src, m.queues[msgKey{src, tag}].pop(), nil
		}
		if m.closed {
			return 0, nil, m.closedErrLocked()
		}
		if m.allDeadLocked(mask) {
			return 0, nil, fmt.Errorf("comm: every admitted source is dead: %w", ErrPeerDead)
		}
		if cancellable {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
			if stop == nil {
				stop = m.watchCancel(ctx)
			}
		}
		m.waitLocked()
	}
}

// pollAnyOf is the non-blocking recvAnyOf: it returns ok=false when no
// admissible message has arrived yet, letting a send loop drain ready
// receives without stalling.
func (m *mailbox) pollAnyOf(tag int, mask []bool) (src int, data []byte, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if src := m.match(tag, mask); src >= 0 {
		return src, m.queues[msgKey{src, tag}].pop(), true, nil
	}
	if m.closed {
		return 0, nil, false, m.closedErrLocked()
	}
	return 0, nil, false, nil
}

// close fails all pending and future receives with ErrClosed.
func (m *mailbox) close() { m.closeWith(nil) }

// closeWith is close with an explicit failure cause (nil means
// ErrClosed); the first close wins.
func (m *mailbox) closeWith(err error) {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.closeErr = err
	}
	m.wakeLocked()
	m.mu.Unlock()
}
