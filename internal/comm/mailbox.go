package comm

import (
	"sync"
	"time"
)

// msgKey matches messages by (source, tag), the P4-style matching rule.
type msgKey struct {
	src, tag int
}

// mailbox is a rank's incoming-message store: per-(src, tag) FIFO
// queues with blocking receive. Both transports deliver into it.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a message; the payload must already be owned by the
// mailbox (callers copy user buffers).
func (m *mailbox) deliver(src, tag int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	k := msgKey{src, tag}
	m.queues[k] = append(m.queues[k], data)
	m.cond.Broadcast()
	return nil
}

// recv blocks until a (src, tag) message is available.
func (m *mailbox) recv(src, tag int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// recvTimeout is recv with a deadline; it returns ErrTimeout when the
// deadline passes without a matching message.
func (m *mailbox) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := msgKey{src, tag}
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return nil, ErrTimeout
		}
		m.cond.Wait()
	}
}

// recvAny blocks until any message with the tag is available,
// preferring the lowest source rank for determinism.
func (m *mailbox) recvAny(tag int) (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		bestSrc := -1
		for k, q := range m.queues {
			if k.tag == tag && len(q) > 0 && (bestSrc < 0 || k.src < bestSrc) {
				bestSrc = k.src
			}
		}
		if bestSrc >= 0 {
			k := msgKey{bestSrc, tag}
			q := m.queues[k]
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return bestSrc, data, nil
		}
		if m.closed {
			return 0, nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// close fails all pending and future receives.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
