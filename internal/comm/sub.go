package comm

import (
	"context"
	"fmt"
	"time"

	"stance/internal/vtime"
)

// Sub-communicators are the active-set mechanism of the elastic
// membership subsystem: a sub-world renumbers a subset of a world's
// ranks as 0..k-1 and translates every operation onto the parent
// endpoints, so the collectives, the masked arrival-order receives and
// the executor's compiled plans all work unchanged over the active set
// while parked ranks are simply absent. Construction is purely local —
// each member calls Sub with the identical member list and no
// communication happens — which is what makes epoch transitions cheap.

// Sub returns this rank's endpoint in the sub-world formed by the
// given ranks of c's world. members lists the participating ranks in
// the order that defines the sub-world numbering (members[i] becomes
// sub-rank i); it must contain c.Rank() exactly once and no
// duplicates. Every member must call Sub with the same list.
//
// The sub-endpoint shares the parent's transport, mailboxes and tag
// space: per-(source, tag) FIFO pairing spans epochs, messages count
// toward the parent world's Stats, and cancelling the context bound by
// World.SPMD on the nearest enclosing world (the parent's, or the
// sub-world's own when it is wrapped as a World and driven by its own
// SPMD) unblocks sub-world operations too. Closing a sub-endpoint is a
// no-op — the root world owns the transport. Like any Comm, a
// sub-endpoint is driven by one rank goroutine at a time.
//
// Sub-worlds over disjoint member sets may run concurrently: the
// member masks keep each sub-world's wildcard and masked receives from
// consuming a non-member's traffic, and disjointness keeps per-(src,
// tag) streams from interleaving across sub-worlds — the isolation the
// stanced job service multiplexes independent sessions with.
func (c *Comm) Sub(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("comm: sub-world with no members")
	}
	root := c.Root()
	toWorld := make([]int, len(members))
	fromWorld := make([]int, root.size)
	for i := range fromWorld {
		fromWorld[i] = -1
	}
	me := -1
	for i, r := range members {
		if r < 0 || r >= c.size {
			return nil, fmt.Errorf("comm: sub-world member %d of %d", r, c.size)
		}
		w := c.worldRankOf(r)
		if fromWorld[w] != -1 {
			return nil, fmt.Errorf("comm: rank %d appears twice in sub-world", r)
		}
		fromWorld[w] = i
		toWorld[i] = w
		if r == c.rank {
			me = i
		}
	}
	if me == -1 {
		return nil, fmt.Errorf("comm: rank %d is not a member of its own sub-world", c.rank)
	}
	mask := make([]bool, root.size)
	for _, w := range toWorld {
		mask[w] = true
	}
	st := &subTransport{
		parent:     root,
		toWorld:    toWorld,
		fromWorld:  fromWorld,
		memberMask: mask,
		scratch:    make([]bool, root.size),
	}
	sc, err := NewComm(me, len(members), st)
	if err != nil {
		return nil, err
	}
	sc.root = root
	sc.from = c
	sc.worldRank = c.WorldRank()
	return sc, nil
}

// worldRankOf translates one of c's ranks into a root-world rank.
func (c *Comm) worldRankOf(rank int) int {
	if st, ok := c.tr.(*subTransport); ok {
		return st.toWorld[rank]
	}
	return rank
}

// subTransport translates a sub-world's operations onto the parent
// world's endpoint. It delegates through the parent *Comm* (not its
// raw transport), so sends count into the parent's statistics and
// observe the bound context exactly like direct parent traffic.
type subTransport struct {
	parent    *Comm
	toWorld   []int // sub rank -> world rank
	fromWorld []int // world rank -> sub rank, -1 for non-members

	// memberMask admits exactly the members in world numbering — the
	// receive-side filter that keeps a sub-world's RecvAny from
	// consuming a non-member's message destined for a later epoch.
	memberMask []bool
	// scratch is the reused world-sized mask for translated masked
	// receives, so the executor's arrival-order drain stays
	// allocation-free through a sub-world.
	scratch []bool
	// dstScratch is the reused destination list for multicasts.
	dstScratch []int
}

// Clock delegates to the parent world's clock, so timing on a
// sub-world is the same timeline as the world it was derived from.
func (t *subTransport) Clock() vtime.Clock { return t.parent.Clock() }

// transportStats reports the root endpoint's wire counters: a
// sub-world multiplexes over its root's socket mesh (that is the whole
// point — one mesh per world, shared by every sub-world and grant), so
// the root's connections are where its bytes flow.
func (t *subTransport) transportStats() (TransportStats, bool) {
	return t.parent.TransportStats()
}

func (t *subTransport) Send(dst, tag int, data []byte) error {
	return t.parent.Send(t.toWorld[dst], tag, data)
}

func (t *subTransport) Recv(src, tag int) ([]byte, error) {
	return t.parent.Recv(t.toWorld[src], tag)
}

func (t *subTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.parent.RecvContext(ctx, t.toWorld[src], tag)
}

// recvTimeout delegates the timed receive to the parent endpoint, so
// failure detection works on sub-worlds whenever the root transport
// has a mailbox (both built-in transports do).
func (t *subTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.parent.RecvTimeout(t.toWorld[src], tag, d)
}

// RecvAny admits only members: a non-member's message with the same
// tag (from an earlier or later epoch) stays queued for whichever
// sub-world it belongs to. On a parent transport without masked
// receives this degrades to arrival order over everyone, failing
// loudly if a non-member's message arrives first.
func (t *subTransport) RecvAny(tag int) (int, []byte, error) {
	return t.RecvAnyContext(t.parent.boundCtx(), tag)
}

func (t *subTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	if mt, ok := t.parent.tr.(MaskedTransport); ok {
		w, data, err := mt.RecvAnyOf(ctx, tag, t.memberMask)
		if err != nil {
			return 0, nil, err
		}
		return t.fromWorld[w], data, nil
	}
	w, data, err := t.parent.RecvAnyContext(ctx, tag)
	if err != nil {
		return 0, nil, err
	}
	if s := t.fromWorld[w]; s >= 0 {
		return s, data, nil
	}
	return 0, nil, fmt.Errorf("comm: sub-world received tag %#x from non-member world rank %d "+
		"(parent transport has no masked receives)", tag, w)
}

func (t *subTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	mt, ok := t.parent.tr.(MaskedTransport)
	if !ok {
		return 0, nil, fmt.Errorf("comm: sub-world masked receive needs a masked parent transport")
	}
	w, data, err := mt.RecvAnyOf(ctx, tag, t.translateMask(mask))
	if err != nil {
		return 0, nil, err
	}
	return t.fromWorld[w], data, nil
}

func (t *subTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	mt, ok := t.parent.tr.(MaskedTransport)
	if !ok {
		return 0, nil, false, nil
	}
	w, data, ok, err := mt.PollAnyOf(tag, t.translateMask(mask))
	if err != nil || !ok {
		return 0, nil, false, err
	}
	return t.fromWorld[w], data, true, nil
}

// translateMask maps a sub-world mask onto world numbering in the
// reused scratch mask; nil admits every member.
func (t *subTransport) translateMask(mask []bool) []bool {
	if mask == nil {
		return t.memberMask
	}
	for i := range t.scratch {
		t.scratch[i] = false
	}
	for i, on := range mask {
		if on && i < len(t.toWorld) {
			t.scratch[t.toWorld[i]] = true
		}
	}
	return t.scratch
}

func (t *subTransport) Multicast(dsts []int, tag int, data []byte) error {
	t.dstScratch = t.dstScratch[:0]
	for _, d := range dsts {
		t.dstScratch = append(t.dstScratch, t.toWorld[d])
	}
	return t.parent.Multicast(t.dstScratch, tag, data)
}

func (t *subTransport) Release(buf []byte) { t.parent.Release(buf) }

// Close is a no-op: the root world owns the transport and closes it.
func (t *subTransport) Close() error { return nil }
