package comm

import (
	"fmt"
)

// Collectives are built from tagged point-to-point messages, as the
// paper's library builds them on P4. Every rank in the world must call
// the same collective with the same tag; per-(src, tag) FIFO ordering
// keeps back-to-back collectives with the same tag from interfering.

// Barrier blocks until every rank has entered it: ranks report to rank
// 0, which releases them (the paper's centralized controller pattern).
func (c *Comm) Barrier(tag int) error {
	if c.size == 1 {
		return nil
	}
	if c.rank == 0 {
		for i := 1; i < c.size; i++ {
			if _, _, err := c.RecvAny(tag); err != nil {
				return err
			}
		}
		dsts := make([]int, 0, c.size-1)
		for i := 1; i < c.size; i++ {
			dsts = append(dsts, i)
		}
		return c.Multicast(dsts, tag, nil)
	}
	if err := c.Send(0, tag, nil); err != nil {
		return err
	}
	_, err := c.Recv(0, tag)
	return err
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers pass nil.
func (c *Comm) Bcast(root, tag int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("comm: bcast root %d of %d", root, c.size)
	}
	if c.size == 1 {
		return data, nil
	}
	if c.rank == root {
		dsts := make([]int, 0, c.size-1)
		for i := 0; i < c.size; i++ {
			if i != root {
				dsts = append(dsts, i)
			}
		}
		if err := c.Multicast(dsts, tag, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	return c.Recv(root, tag)
}

// Gather collects each rank's data at root, indexed by rank. Non-root
// callers receive nil.
func (c *Comm) Gather(root, tag int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("comm: gather root %d of %d", root, c.size)
	}
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.size)
	out[root] = append([]byte(nil), data...)
	for i := 0; i < c.size; i++ {
		if i == root {
			continue
		}
		d, err := c.Recv(i, tag)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// AllGather collects each rank's data on every rank, indexed by rank:
// a gather at rank 0 followed by a broadcast of the sections.
func (c *Comm) AllGather(tag int, data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, tag, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = EncodeSections(parts)
	}
	packed, err = c.Bcast(0, tag, packed)
	if err != nil {
		return nil, err
	}
	return DecodeSections(packed)
}

// AllReduceF64 element-wise reduces each rank's vals with op on rank 0
// and broadcasts the result. All ranks must pass equal-length slices;
// a mismatch is detected at the root and reported on every rank (the
// broadcast carries a status byte so peers are not left blocking on a
// collective the root abandoned).
func (c *Comm) AllReduceF64(tag int, vals []float64, op func(a, b float64) float64) ([]float64, error) {
	parts, err := c.Gather(0, tag, F64sToBytes(vals))
	if err != nil {
		return nil, err
	}
	var packed []byte
	var rootErr error
	if c.rank == 0 {
		acc := append([]float64(nil), vals...)
		for i, part := range parts {
			if i == 0 {
				continue
			}
			vs, err := BytesToF64s(part)
			if err == nil && len(vs) != len(acc) {
				err = fmt.Errorf("comm: allreduce length mismatch: rank %d sent %d values, want %d",
					i, len(vs), len(acc))
			}
			if err != nil {
				rootErr = err
				break
			}
			for k := range acc {
				acc[k] = op(acc[k], vs[k])
			}
		}
		if rootErr != nil {
			packed = []byte{1}
		} else {
			packed = append([]byte{0}, F64sToBytes(acc)...)
		}
	}
	packed, err = c.Bcast(0, tag, packed)
	if err != nil {
		return nil, err
	}
	if c.rank == 0 && rootErr != nil {
		return nil, rootErr
	}
	if len(packed) < 1 {
		return nil, fmt.Errorf("comm: malformed allreduce reply")
	}
	if packed[0] != 0 {
		return nil, fmt.Errorf("comm: allreduce failed at root")
	}
	return BytesToF64s(packed[1:])
}
