package comm

import (
	"sync"
	"testing"
)

// TestSubConcurrentDisjoint: two disjoint sub-worlds carved from one
// shared parent run independent traffic concurrently — identical tags,
// shared mailboxes, wildcard receives — and must stay fully isolated.
// Under -race (CI always runs it) this also pins the shared endpoint
// state (mailboxes, stats counters) as data-race-free, which is what
// the job service relies on when it multiplexes sessions on one pool.
func TestSubConcurrentDisjoint(t *testing.T) {
	world, err := Open("inproc", 6, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	groups := [][]int{{0, 1, 2}, {3, 4, 5}}
	const (
		tagGather = 0xA1
		tagP2P    = 0xA2
		tagSync   = 0xA3
		rounds    = 50
	)
	err = world.SPMD(nil, func(c *Comm) error {
		gi := c.Rank() / 3
		members := groups[gi]
		sub, err := c.Sub(members)
		if err != nil {
			return err
		}
		for r := 0; r < rounds; r++ {
			// Collectives on the same tag in both groups at once.
			parts, err := sub.AllGather(tagGather, []byte{byte(c.Rank()), byte(r)})
			if err != nil {
				return err
			}
			for i, m := range members {
				if len(parts[i]) != 2 || parts[i][0] != byte(m) || parts[i][1] != byte(r) {
					t.Errorf("rank %d round %d: allgather[%d] = %v, want [%d %d] — cross-group leak",
						c.Rank(), r, i, parts[i], m, r)
				}
			}
			// Wildcard receives on each group's rank 0, again on a tag
			// both groups use: the member mask must keep the other
			// group's concurrent sends invisible.
			if sub.Rank() == 0 {
				mask := make([]bool, sub.Size())
				for i := 1; i < sub.Size(); i++ {
					mask[i] = true
				}
				for n := 1; n < sub.Size(); n++ {
					src, data, err := sub.RecvAnyOf(tagP2P, mask)
					if err != nil {
						return err
					}
					if len(data) != 2 || data[0] != byte(members[src]) || data[1] != byte(r) {
						t.Errorf("rank %d round %d: wildcard recv from sub rank %d = %v, want [%d %d]",
							c.Rank(), r, src, data, members[src], r)
					}
					sub.Release(data)
					mask[src] = false
				}
			} else if err := sub.Send(0, tagP2P, []byte{byte(c.Rank()), byte(r)}); err != nil {
				return err
			}
			if err := sub.Barrier(tagSync); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubConcurrentWrappedWorlds is the job-service carving pattern at
// the comm layer: the parent world never runs an SPMD section of its
// own; disjoint sub-worlds are wrapped as independent worlds and each
// runs its own concurrent SPMD section over the shared endpoints.
func TestSubConcurrentWrappedWorlds(t *testing.T) {
	parent, err := Open("inproc", 5, TransportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	groups := [][]int{{0, 1}, {2, 3, 4}}
	const rounds = 30

	worlds := make([]*World, len(groups))
	for gi, members := range groups {
		subs := make([]*Comm, len(members))
		for i, m := range members {
			sc, err := parent.Comm(m).Sub(members)
			if err != nil {
				t.Fatal(err)
			}
			subs[i] = sc
		}
		worlds[gi] = WrapWorld(subs, nil)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for gi := range groups {
		gi := gi
		wg.Add(1)
		go func() {
			defer wg.Done()
			members := groups[gi]
			errs[gi] = worlds[gi].SPMD(nil, func(c *Comm) error {
				for r := 0; r < rounds; r++ {
					parts, err := c.AllGather(0xB1, []byte{byte(members[c.Rank()]), byte(r)})
					if err != nil {
						return err
					}
					for i, m := range members {
						if len(parts[i]) != 2 || parts[i][0] != byte(m) || parts[i][1] != byte(r) {
							t.Errorf("group %d rank %d round %d: allgather[%d] = %v, want [%d %d]",
								gi, c.Rank(), r, i, parts[i], m, r)
						}
					}
				}
				return nil
			})
		}()
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			t.Errorf("group %d SPMD: %v", gi, err)
		}
	}
	// Sub-world traffic all counted on the one shared parent.
	msgs, _ := parent.Stats()
	if msgs == 0 {
		t.Error("no traffic recorded on the parent world")
	}
}
