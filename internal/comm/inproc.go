package comm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stance/internal/vtime"
)

// inprocTransport connects goroutine "workstations" through shared
// mailboxes, applying the network cost model on the sending side. On
// the real clock the model emulates a shared medium: one wire for the
// whole world, so concurrent transmissions from different workstations
// serialize — the defining behaviour of the paper's shared Ethernet.
// On a simulated clock (vtime.Sim) every charge and delivery delay is
// an exact virtual duration instead, and senders charge independently:
// wire contention would serialize in mutex-acquisition order, which is
// scheduling-dependent, so the simulated network is modeled as
// switched (contention-free) to keep runs deterministic.
type inprocTransport struct {
	rank  int
	boxes []*mailbox // shared across the world
	model *Model
	topo  *Topology // group structure; nil on flat worlds
	inter *Model    // prices cross-group messages; non-nil only with topo

	// The shared media, real clock only (nil slices on a simulated
	// clock or a free network). A flat world has one wire (wires[0]).
	// A two-level world (inter != nil) has one wire per group plus a
	// backbone wire between groups: intra-group traffic in different
	// groups no longer contends — the fast links are independent — while
	// all inter-group traffic serializes on the slow shared link.
	wires     []*sync.Mutex
	interWire *sync.Mutex

	clock vtime.Clock
	sim   *vtime.Sim // non-nil when clock is a vtime.Sim

	// Delayed-delivery machinery for the real clock (Model.Delay > 0):
	// one courier goroutine per destination preserves arrival order
	// while messages sit in flight, so per-(src, tag) FIFO survives the
	// delay. Shared across the world; stop tears the couriers down
	// once. On a simulated clock deliveries are clock events instead
	// and no couriers exist.
	couriers []chan delayedMsg
	stop     chan struct{}
	stopOnce *sync.Once
}

// delayedMsg is one in-flight message on a delayed medium.
type delayedMsg struct {
	src, tag int
	buf      []byte
	readyAt  time.Time
}

// NewWorld creates an in-process world of p ranks whose messages cost
// according to model (nil for a free network) on the real clock. Use
// Open with a TransportOptions.Clock to run the world on a simulated
// clock.
func NewWorld(p int, model *Model) ([]*Comm, error) {
	return newInprocWorld(p, TransportOptions{Model: model})
}

// newInprocWorld builds the in-process world from validated options.
// Of the options it honors Model, Clock, Topology and InterModel; the
// socket tunings have nothing to tune here.
func newInprocWorld(p int, opts TransportOptions) ([]*Comm, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	model, clock := opts.Model, opts.Clock
	topo, inter := opts.Topology, opts.InterModel
	if clock == nil {
		clock = vtime.Real{}
	}
	sim := vtime.AsSim(clock)
	boxes := make([]*mailbox, p)
	for i := range boxes {
		boxes[i] = newMailbox(clock)
	}
	var wires []*sync.Mutex
	var interWire *sync.Mutex
	if sim == nil {
		switch {
		case inter != nil:
			// Two-level world: independent fast media inside the
			// groups, one shared slow backbone between them.
			wires = make([]*sync.Mutex, topo.Groups())
			for g := range wires {
				wires[g] = new(sync.Mutex)
			}
			interWire = new(sync.Mutex)
		case model != nil:
			wires = []*sync.Mutex{new(sync.Mutex)}
		}
	}
	var couriers []chan delayedMsg
	var stop chan struct{}
	var stopOnce *sync.Once
	delayed := (model != nil && model.Delay > 0) || (inter != nil && inter.Delay > 0)
	if delayed && sim == nil {
		couriers = make([]chan delayedMsg, p)
		stop = make(chan struct{})
		stopOnce = new(sync.Once)
		for i := range couriers {
			couriers[i] = make(chan delayedMsg, 1024)
			go courier(boxes[i], couriers[i], stop)
		}
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, &inprocTransport{
			rank: i, boxes: boxes, model: model, topo: topo, inter: inter,
			wires: wires, interWire: interWire,
			clock: clock, sim: sim,
			couriers: couriers, stop: stop, stopOnce: stopOnce,
		})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	return comms, nil
}

// courier delivers one destination's in-flight messages after their
// delivery delay. A single courier per mailbox keeps arrival order
// identical to send order, so the per-(src, tag) FIFO guarantee holds
// on a delayed medium too.
func courier(box *mailbox, ch chan delayedMsg, stop chan struct{}) {
	for {
		select {
		case m := <-ch:
			if d := time.Until(m.readyAt); d > 0 {
				time.Sleep(d)
			}
			if err := box.deliver(m.src, m.tag, m.buf); err != nil {
				box.putBuf(m.buf)
			}
		case <-stop:
			return
		}
	}
}

// Clock returns the clock the world's charges and delays run on.
func (t *inprocTransport) Clock() vtime.Clock { return t.clock }

// modelFor returns the model pricing a message from this rank to dst:
// the inter-group model when one is set and dst lies in another group,
// the base model otherwise (including always on a flat world).
func (t *inprocTransport) modelFor(dst int) *Model {
	if t.inter != nil && !t.topo.SameGroup(t.rank, dst) {
		return t.inter
	}
	return t.model
}

// wireFor returns the medium a message to dst occupies: the single
// flat-world wire, this rank's group wire, or the inter-group backbone.
// nil means contention-free (free network or simulated clock).
func (t *inprocTransport) wireFor(dst int) *sync.Mutex {
	if t.interWire == nil {
		if len(t.wires) == 0 {
			return nil
		}
		return t.wires[0]
	}
	if !t.topo.SameGroup(t.rank, dst) {
		return t.interWire
	}
	return t.wires[t.topo.GroupOf(t.rank)]
}

// transmitOn occupies wire w for the message's cost under model m: the
// shared medium on the real clock, an independent per-sender charge on
// a simulated one (see the type comment).
func (t *inprocTransport) transmitOn(m *Model, w *sync.Mutex, n int) {
	if m == nil {
		return
	}
	if t.sim != nil || w == nil {
		m.charge(t.clock, n)
		return
	}
	w.Lock()
	m.charge(t.clock, n)
	w.Unlock()
}

// transmit occupies the medium a message to dst travels on, for its
// modeled cost under the model pricing that pair.
func (t *inprocTransport) transmit(dst, n int) {
	t.transmitOn(t.modelFor(dst), t.wireFor(dst), n)
}

// dispatch hands a copied payload to the destination: directly, or —
// when the model carries a delivery delay — through a real-clock
// courier or a virtual-clock timer. Consecutive sends from one rank
// keep their order on every path, preserving per-(src, tag) FIFO.
func (t *inprocTransport) dispatch(dst, tag int, buf []byte) error {
	box := t.boxes[dst]
	if m := t.modelFor(dst); m != nil && m.Delay > 0 {
		if t.sim != nil {
			src := t.rank
			t.sim.AfterFunc(m.Delay, func() {
				if err := box.deliver(src, tag, buf); err != nil {
					box.putBuf(buf)
				}
			})
			return nil
		}
		t.couriers[dst] <- delayedMsg{src: t.rank, tag: tag, buf: buf,
			readyAt: time.Now().Add(m.Delay)}
		return nil
	}
	if err := box.deliver(t.rank, tag, buf); err != nil {
		box.putBuf(buf)
		return err
	}
	return nil
}

func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	t.transmit(dst, len(data))
	// The payload copy goes into a buffer recycled from the receiver's
	// pool, so a steady-state send/receive/Release loop allocates
	// nothing.
	buf := t.boxes[dst].getBuf(len(data))
	copy(buf, data)
	return t.dispatch(dst, tag, buf)
}

// Multicast delivers to all destinations for a single network charge
// per medium when the modeled medium supports it; otherwise it charges
// per destination like repeated sends. On a two-level world the
// destinations split into an intra-group part (priced on this group's
// fast medium) and an inter-group part (priced on the slow backbone),
// each honoring its own model's Multicast capability.
func (t *inprocTransport) Multicast(dsts []int, tag int, data []byte) error {
	n := len(data)
	if t.inter == nil {
		// One medium — the flat behaviour.
		w := t.wireFor(t.rank)
		if t.model == nil || t.model.Multicast {
			t.transmitOn(t.model, w, n)
		} else {
			for range dsts {
				t.transmitOn(t.model, w, n)
			}
		}
	} else {
		intra, inter := 0, 0
		for _, d := range dsts {
			if t.topo.SameGroup(t.rank, d) {
				intra++
			} else {
				inter++
			}
		}
		if intra > 0 {
			if t.model == nil || t.model.Multicast {
				intra = 1
			}
			w := t.wireFor(t.rank)
			for i := 0; i < intra; i++ {
				t.transmitOn(t.model, w, n)
			}
		}
		if inter > 0 {
			if t.inter.Multicast {
				inter = 1
			}
			for i := 0; i < inter; i++ {
				t.transmitOn(t.inter, t.interWire, n)
			}
		}
	}
	for _, d := range dsts {
		buf := t.boxes[d].getBuf(len(data))
		copy(buf, data)
		if err := t.dispatch(d, tag, buf); err != nil {
			return err
		}
	}
	return nil
}

func (t *inprocTransport) Recv(src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(nil, src, tag)
}

func (t *inprocTransport) RecvAny(tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(nil, tag)
}

func (t *inprocTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(ctx, src, tag)
}

func (t *inprocTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(ctx, tag)
}

func (t *inprocTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.boxes[t.rank].recvAnyOf(ctx, tag, mask)
}

func (t *inprocTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.boxes[t.rank].pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to this rank's pool for
// reuse by future senders.
func (t *inprocTransport) Release(buf []byte) {
	t.boxes[t.rank].putBuf(buf)
}

func (t *inprocTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.boxes[t.rank].recvTimeout(src, tag, d)
}

func (t *inprocTransport) Close() error {
	if t.stopOnce != nil {
		t.stopOnce.Do(func() { close(t.stop) })
	}
	t.boxes[t.rank].close()
	return nil
}
