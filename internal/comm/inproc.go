package comm

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// inprocTransport connects goroutine "workstations" through shared
// mailboxes, applying the network cost model on the sending side. The
// model emulates a shared medium: one wire for the whole world, so
// concurrent transmissions serialize exactly as on the paper's shared
// Ethernet — total bytes on the network, not per-sender bytes,
// determine transfer time.
type inprocTransport struct {
	rank  int
	boxes []*mailbox // shared across the world
	model *Model
	wire  *sync.Mutex // shared medium; nil when model is nil
}

// NewWorld creates an in-process world of p ranks whose messages cost
// according to model (nil for a free network). Each returned Comm is
// one SPMD "workstation"; run them with SPMD.
func NewWorld(p int, model *Model) ([]*Comm, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	boxes := make([]*mailbox, p)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	var wire *sync.Mutex
	if model != nil {
		wire = new(sync.Mutex)
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, &inprocTransport{rank: i, boxes: boxes, model: model, wire: wire})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	return comms, nil
}

// transmit occupies the shared medium for the message's modeled cost.
func (t *inprocTransport) transmit(n int) {
	if t.model == nil {
		return
	}
	t.wire.Lock()
	t.model.charge(n)
	t.wire.Unlock()
}

func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	t.transmit(len(data))
	// The payload copy goes into a buffer recycled from the receiver's
	// pool, so a steady-state send/receive/Release loop allocates
	// nothing.
	box := t.boxes[dst]
	buf := box.getBuf(len(data))
	copy(buf, data)
	if err := box.deliver(t.rank, tag, buf); err != nil {
		box.putBuf(buf)
		return err
	}
	return nil
}

// Multicast delivers to all destinations for a single network charge
// when the modeled medium supports it; otherwise it charges per
// destination like repeated sends.
func (t *inprocTransport) Multicast(dsts []int, tag int, data []byte) error {
	if t.model == nil || t.model.Multicast {
		t.transmit(len(data))
	} else {
		for range dsts {
			t.transmit(len(data))
		}
	}
	for _, d := range dsts {
		box := t.boxes[d]
		buf := box.getBuf(len(data))
		copy(buf, data)
		if err := box.deliver(t.rank, tag, buf); err != nil {
			box.putBuf(buf)
			return err
		}
	}
	return nil
}

func (t *inprocTransport) Recv(src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(nil, src, tag)
}

func (t *inprocTransport) RecvAny(tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(nil, tag)
}

func (t *inprocTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(ctx, src, tag)
}

func (t *inprocTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(ctx, tag)
}

func (t *inprocTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.boxes[t.rank].recvAnyOf(ctx, tag, mask)
}

func (t *inprocTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.boxes[t.rank].pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to this rank's pool for
// reuse by future senders.
func (t *inprocTransport) Release(buf []byte) {
	t.boxes[t.rank].putBuf(buf)
}

func (t *inprocTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.boxes[t.rank].recvTimeout(src, tag, d)
}

func (t *inprocTransport) Close() error {
	t.boxes[t.rank].close()
	return nil
}
