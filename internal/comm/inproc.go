package comm

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// inprocTransport connects goroutine "workstations" through shared
// mailboxes, applying the network cost model on the sending side. The
// model emulates a shared medium: one wire for the whole world, so
// concurrent transmissions serialize exactly as on the paper's shared
// Ethernet — total bytes on the network, not per-sender bytes,
// determine transfer time.
type inprocTransport struct {
	rank  int
	boxes []*mailbox // shared across the world
	model *Model
	wire  *sync.Mutex // shared medium; nil when model is nil

	// Delayed-delivery machinery (Model.Delay > 0): one courier
	// goroutine per destination preserves arrival order while messages
	// sit in flight, so per-(src, tag) FIFO survives the delay. Shared
	// across the world; stop tears the couriers down once.
	couriers []chan delayedMsg
	stop     chan struct{}
	stopOnce *sync.Once
}

// delayedMsg is one in-flight message on a delayed medium.
type delayedMsg struct {
	src, tag int
	buf      []byte
	readyAt  time.Time
}

// NewWorld creates an in-process world of p ranks whose messages cost
// according to model (nil for a free network). Each returned Comm is
// one SPMD "workstation"; run them with SPMD.
func NewWorld(p int, model *Model) ([]*Comm, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	boxes := make([]*mailbox, p)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	var wire *sync.Mutex
	if model != nil {
		wire = new(sync.Mutex)
	}
	var couriers []chan delayedMsg
	var stop chan struct{}
	var stopOnce *sync.Once
	if model != nil && model.Delay > 0 {
		couriers = make([]chan delayedMsg, p)
		stop = make(chan struct{})
		stopOnce = new(sync.Once)
		for i := range couriers {
			couriers[i] = make(chan delayedMsg, 1024)
			go courier(boxes[i], couriers[i], stop)
		}
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, &inprocTransport{
			rank: i, boxes: boxes, model: model, wire: wire,
			couriers: couriers, stop: stop, stopOnce: stopOnce,
		})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	return comms, nil
}

// courier delivers one destination's in-flight messages after their
// delivery delay. A single courier per mailbox keeps arrival order
// identical to send order, so the per-(src, tag) FIFO guarantee holds
// on a delayed medium too.
func courier(box *mailbox, ch chan delayedMsg, stop chan struct{}) {
	for {
		select {
		case m := <-ch:
			if d := time.Until(m.readyAt); d > 0 {
				time.Sleep(d)
			}
			if err := box.deliver(m.src, m.tag, m.buf); err != nil {
				box.putBuf(m.buf)
			}
		case <-stop:
			return
		}
	}
}

// transmit occupies the shared medium for the message's modeled cost.
func (t *inprocTransport) transmit(n int) {
	if t.model == nil {
		return
	}
	t.wire.Lock()
	t.model.charge(n)
	t.wire.Unlock()
}

func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	t.transmit(len(data))
	// The payload copy goes into a buffer recycled from the receiver's
	// pool, so a steady-state send/receive/Release loop allocates
	// nothing.
	box := t.boxes[dst]
	buf := box.getBuf(len(data))
	copy(buf, data)
	if t.couriers != nil {
		// Delayed medium: hand the message to the destination's courier
		// instead of delivering it; the sender returns immediately.
		t.couriers[dst] <- delayedMsg{src: t.rank, tag: tag, buf: buf,
			readyAt: time.Now().Add(t.model.Delay)}
		return nil
	}
	if err := box.deliver(t.rank, tag, buf); err != nil {
		box.putBuf(buf)
		return err
	}
	return nil
}

// Multicast delivers to all destinations for a single network charge
// when the modeled medium supports it; otherwise it charges per
// destination like repeated sends.
func (t *inprocTransport) Multicast(dsts []int, tag int, data []byte) error {
	if t.model == nil || t.model.Multicast {
		t.transmit(len(data))
	} else {
		for range dsts {
			t.transmit(len(data))
		}
	}
	for _, d := range dsts {
		box := t.boxes[d]
		buf := box.getBuf(len(data))
		copy(buf, data)
		if t.couriers != nil {
			t.couriers[d] <- delayedMsg{src: t.rank, tag: tag, buf: buf,
				readyAt: time.Now().Add(t.model.Delay)}
			continue
		}
		if err := box.deliver(t.rank, tag, buf); err != nil {
			box.putBuf(buf)
			return err
		}
	}
	return nil
}

func (t *inprocTransport) Recv(src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(nil, src, tag)
}

func (t *inprocTransport) RecvAny(tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(nil, tag)
}

func (t *inprocTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(ctx, src, tag)
}

func (t *inprocTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(ctx, tag)
}

func (t *inprocTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.boxes[t.rank].recvAnyOf(ctx, tag, mask)
}

func (t *inprocTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.boxes[t.rank].pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to this rank's pool for
// reuse by future senders.
func (t *inprocTransport) Release(buf []byte) {
	t.boxes[t.rank].putBuf(buf)
}

func (t *inprocTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.boxes[t.rank].recvTimeout(src, tag, d)
}

func (t *inprocTransport) Close() error {
	if t.stopOnce != nil {
		t.stopOnce.Do(func() { close(t.stop) })
	}
	t.boxes[t.rank].close()
	return nil
}
