package comm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stance/internal/vtime"
)

// inprocTransport connects goroutine "workstations" through shared
// mailboxes, applying the network cost model on the sending side. On
// the real clock the model emulates a shared medium: one wire for the
// whole world, so concurrent transmissions from different workstations
// serialize — the defining behaviour of the paper's shared Ethernet.
// On a simulated clock (vtime.Sim) every charge and delivery delay is
// an exact virtual duration instead, and senders charge independently:
// wire contention would serialize in mutex-acquisition order, which is
// scheduling-dependent, so the simulated network is modeled as
// switched (contention-free) to keep runs deterministic.
type inprocTransport struct {
	rank  int
	boxes []*mailbox // shared across the world
	model *Model
	wire  *sync.Mutex // shared medium; nil when model is nil or the clock is simulated
	clock vtime.Clock
	sim   *vtime.Sim // non-nil when clock is a vtime.Sim

	// Delayed-delivery machinery for the real clock (Model.Delay > 0):
	// one courier goroutine per destination preserves arrival order
	// while messages sit in flight, so per-(src, tag) FIFO survives the
	// delay. Shared across the world; stop tears the couriers down
	// once. On a simulated clock deliveries are clock events instead
	// and no couriers exist.
	couriers []chan delayedMsg
	stop     chan struct{}
	stopOnce *sync.Once
}

// delayedMsg is one in-flight message on a delayed medium.
type delayedMsg struct {
	src, tag int
	buf      []byte
	readyAt  time.Time
}

// NewWorld creates an in-process world of p ranks whose messages cost
// according to model (nil for a free network) on the real clock. Use
// Open with a TransportOptions.Clock to run the world on a simulated
// clock.
func NewWorld(p int, model *Model) ([]*Comm, error) {
	return newInprocWorld(p, model, vtime.Real{})
}

// newInprocWorld builds the in-process world on an explicit clock.
func newInprocWorld(p int, model *Model, clock vtime.Clock) ([]*Comm, error) {
	if p <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", p)
	}
	if clock == nil {
		clock = vtime.Real{}
	}
	sim := vtime.AsSim(clock)
	boxes := make([]*mailbox, p)
	for i := range boxes {
		boxes[i] = newMailbox(clock)
	}
	var wire *sync.Mutex
	if model != nil && sim == nil {
		wire = new(sync.Mutex)
	}
	var couriers []chan delayedMsg
	var stop chan struct{}
	var stopOnce *sync.Once
	if model != nil && model.Delay > 0 && sim == nil {
		couriers = make([]chan delayedMsg, p)
		stop = make(chan struct{})
		stopOnce = new(sync.Once)
		for i := range couriers {
			couriers[i] = make(chan delayedMsg, 1024)
			go courier(boxes[i], couriers[i], stop)
		}
	}
	comms := make([]*Comm, p)
	for i := range comms {
		c, err := NewComm(i, p, &inprocTransport{
			rank: i, boxes: boxes, model: model, wire: wire,
			clock: clock, sim: sim,
			couriers: couriers, stop: stop, stopOnce: stopOnce,
		})
		if err != nil {
			return nil, err
		}
		comms[i] = c
	}
	return comms, nil
}

// courier delivers one destination's in-flight messages after their
// delivery delay. A single courier per mailbox keeps arrival order
// identical to send order, so the per-(src, tag) FIFO guarantee holds
// on a delayed medium too.
func courier(box *mailbox, ch chan delayedMsg, stop chan struct{}) {
	for {
		select {
		case m := <-ch:
			if d := time.Until(m.readyAt); d > 0 {
				time.Sleep(d)
			}
			if err := box.deliver(m.src, m.tag, m.buf); err != nil {
				box.putBuf(m.buf)
			}
		case <-stop:
			return
		}
	}
}

// Clock returns the clock the world's charges and delays run on.
func (t *inprocTransport) Clock() vtime.Clock { return t.clock }

// transmit occupies the medium for the message's modeled cost: the
// shared wire on the real clock, an independent per-sender charge on a
// simulated one (see the type comment).
func (t *inprocTransport) transmit(n int) {
	if t.model == nil {
		return
	}
	if t.sim != nil {
		t.model.charge(t.clock, n)
		return
	}
	t.wire.Lock()
	t.model.charge(t.clock, n)
	t.wire.Unlock()
}

// dispatch hands a copied payload to the destination: directly, or —
// when the model carries a delivery delay — through a real-clock
// courier or a virtual-clock timer. Consecutive sends from one rank
// keep their order on every path, preserving per-(src, tag) FIFO.
func (t *inprocTransport) dispatch(dst, tag int, buf []byte) error {
	box := t.boxes[dst]
	if t.model != nil && t.model.Delay > 0 {
		if t.sim != nil {
			src := t.rank
			t.sim.AfterFunc(t.model.Delay, func() {
				if err := box.deliver(src, tag, buf); err != nil {
					box.putBuf(buf)
				}
			})
			return nil
		}
		t.couriers[dst] <- delayedMsg{src: t.rank, tag: tag, buf: buf,
			readyAt: time.Now().Add(t.model.Delay)}
		return nil
	}
	if err := box.deliver(t.rank, tag, buf); err != nil {
		box.putBuf(buf)
		return err
	}
	return nil
}

func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	t.transmit(len(data))
	// The payload copy goes into a buffer recycled from the receiver's
	// pool, so a steady-state send/receive/Release loop allocates
	// nothing.
	buf := t.boxes[dst].getBuf(len(data))
	copy(buf, data)
	return t.dispatch(dst, tag, buf)
}

// Multicast delivers to all destinations for a single network charge
// when the modeled medium supports it; otherwise it charges per
// destination like repeated sends.
func (t *inprocTransport) Multicast(dsts []int, tag int, data []byte) error {
	if t.model == nil || t.model.Multicast {
		t.transmit(len(data))
	} else {
		for range dsts {
			t.transmit(len(data))
		}
	}
	for _, d := range dsts {
		buf := t.boxes[d].getBuf(len(data))
		copy(buf, data)
		if err := t.dispatch(d, tag, buf); err != nil {
			return err
		}
	}
	return nil
}

func (t *inprocTransport) Recv(src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(nil, src, tag)
}

func (t *inprocTransport) RecvAny(tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(nil, tag)
}

func (t *inprocTransport) RecvContext(ctx context.Context, src, tag int) ([]byte, error) {
	return t.boxes[t.rank].recv(ctx, src, tag)
}

func (t *inprocTransport) RecvAnyContext(ctx context.Context, tag int) (int, []byte, error) {
	return t.boxes[t.rank].recvAny(ctx, tag)
}

func (t *inprocTransport) RecvAnyOf(ctx context.Context, tag int, mask []bool) (int, []byte, error) {
	return t.boxes[t.rank].recvAnyOf(ctx, tag, mask)
}

func (t *inprocTransport) PollAnyOf(tag int, mask []bool) (int, []byte, bool, error) {
	return t.boxes[t.rank].pollAnyOf(tag, mask)
}

// Release returns a received payload buffer to this rank's pool for
// reuse by future senders.
func (t *inprocTransport) Release(buf []byte) {
	t.boxes[t.rank].putBuf(buf)
}

func (t *inprocTransport) recvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return t.boxes[t.rank].recvTimeout(src, tag, d)
}

func (t *inprocTransport) Close() error {
	if t.stopOnce != nil {
		t.stopOnce.Do(func() { close(t.stop) })
	}
	t.boxes[t.rank].close()
	return nil
}
