package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encoding helpers. Numeric slices travel as little-endian
// fixed-width values; multi-part payloads (gathers, broadcasts of
// variable-size sections) use a simple length-prefixed section format.

// F64sToBytes encodes a float64 slice.
func F64sToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	PutF64s(out, vals)
	return out
}

// PutF64s encodes vals into dst in the wire format, writing exactly
// 8*len(vals) bytes — the in-place counterpart of F64sToBytes for
// callers that own a persistent wire buffer.
func PutF64s(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// GetF64s decodes src into dst — the in-place counterpart of
// BytesToF64s. len(src) must be exactly 8*len(dst).
func GetF64s(dst []float64, src []byte) error {
	if len(src) != 8*len(dst) {
		return fmt.Errorf("comm: float64 payload is %d bytes, want %d", len(src), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// PackF64s gathers vals[idx[i]] into dst in the wire format — the
// executor's pack primitive: values travel straight from the vector
// into the wire buffer with no intermediate []float64. dst must be at
// least 8*len(idx) bytes.
func PackF64s(dst []byte, vals []float64, idx []int32) {
	for i, j := range idx {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(vals[j]))
	}
}

// UnpackF64s decodes src and scatters value i into vals[idx[i]] — the
// executor's unpack primitive: wire bytes land straight in the ghost
// section. len(src) must be exactly 8*len(idx).
func UnpackF64s(vals []float64, idx []int32, src []byte) error {
	if len(src) != 8*len(idx) {
		return fmt.Errorf("comm: float64 payload is %d bytes, want %d", len(src), 8*len(idx))
	}
	for i, j := range idx {
		vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// AddF64s decodes src and accumulates value i into vals[idx[i]] — the
// scatter-add unpack. len(src) must be exactly 8*len(idx).
func AddF64s(vals []float64, idx []int32, src []byte) error {
	if len(src) != 8*len(idx) {
		return fmt.Errorf("comm: float64 payload is %d bytes, want %d", len(src), 8*len(idx))
	}
	for i, j := range idx {
		vals[j] += math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// BytesToF64s decodes a float64 slice.
func BytesToF64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("comm: float64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// I64sToBytes encodes an int64 slice.
func I64sToBytes(vals []int64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

// BytesToI64s decodes an int64 slice.
func BytesToI64s(data []byte) ([]int64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("comm: int64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]int64, len(data)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// I32sToBytes encodes an int32 slice.
func I32sToBytes(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// BytesToI32s decodes an int32 slice.
func BytesToI32s(data []byte) ([]int32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("comm: int32 payload length %d not a multiple of 4", len(data))
	}
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}

// EncodeSections concatenates variable-length byte sections with
// length prefixes, so a gather result can travel as one message.
func EncodeSections(sections [][]byte) []byte {
	total := 4
	for _, s := range sections {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out
}

// DecodeSections reverses EncodeSections.
func DecodeSections(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("comm: sections payload too short (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	data = data[4:]
	// Each section costs at least its 4-byte length prefix, so a valid
	// payload bounds the count; checking before allocating keeps a
	// corrupt or truncated header from demanding gigabytes up front.
	if uint64(n) > uint64(len(data)/4) {
		return nil, fmt.Errorf("comm: sections payload promises %d sections in %d bytes", n, len(data))
	}
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(data) < 4 {
			return nil, fmt.Errorf("comm: truncated section header at %d", i)
		}
		l := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, fmt.Errorf("comm: truncated section %d: have %d bytes, want %d", i, len(data), l)
		}
		out = append(out, data[:l:l])
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("comm: %d trailing bytes after sections", len(data))
	}
	return out, nil
}
