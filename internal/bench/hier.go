package bench

import (
	"context"
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/loadbal"
	"stance/internal/session"
	"stance/internal/vtime"
)

// The hierarchical twins of Tables 4 and 5: the same parallel loop and
// balance protocol, but on a two-level cluster — node groups joined by
// a slower shared link (the paper's Section 4 nonuniform network).
// Table H1 sweeps the inter-group slowdown and shows the crossover
// where the hierarchy-aware cut overtakes the flat cut; Table H2
// compares the slow-link cost of a balance check under the flat
// all-gather against the leader-aggregated exchange.
//
// Both twins always run on a simulated clock with virtualized compute:
// the effects they measure are properties of the network model, and
// the virtual clock makes every duration exact and deterministic
// regardless of how loaded the machine is.

// hierProcs/hierGroups are the twins' cluster shape; -groups on
// stance-bench overrides the group count.
const (
	hierProcs       = 4
	hierChecksProcs = 8
)

// hierGroupCount resolves the configured group count (default 2).
func hierGroupCount(opts Options) int {
	if opts.Groups > 1 {
		return opts.Groups
	}
	return 2
}

// dumbbellMesh is the nonuniform-network stress graph: two bands of a
// and b vertices (each vertex joined to its k nearest successors
// within the band) connected by a single bridge edge. In identity
// order a cut inside a band crosses ~k²/2 edges; the cut at the bridge
// crosses one. With a != b the flat equal cut lands inside a band, so
// only a boundary-refining cut finds the bridge.
func dumbbellMesh(a, b, k int) (*graph.Graph, error) {
	n := a + b
	var edges []graph.Edge
	band := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j <= i+k && j < hi; j++ {
				edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			}
		}
	}
	band(0, a)
	band(a, n)
	edges = append(edges, graph.Edge{U: int32(a - 1), V: int32(a)})
	return graph.FromEdges(n, edges, nil)
}

// hierCompute resolves the virtualized per-element compute cost. The
// default is deliberately heavy: the hierarchy-aware cut trades
// balance for slow-link bytes (the refined boundary gives one group
// more vertices), so a realistic compute-to-network ratio is exactly
// what lets the flat cut win on a uniform network and lose on a
// nonuniform one — the crossover H1 exists to show.
func hierCompute(opts Options) time.Duration {
	if opts.ComputeCost > 0 {
		return opts.ComputeCost
	}
	return 400 * time.Microsecond
}

// MeasureHierRun runs the parallel loop on a two-level world whose
// inter-group link is interScale× the modeled Ethernet, with either
// the hierarchy-aware cut or (flatCut) the flat reference cut, and
// returns the report — Wall and InterMsgs/InterBytes are the columns
// the twins print. bal configures the balancer arm (nil = static).
func MeasureHierRun(g *graph.Graph, opts Options, p, groups, iters int,
	interScale float64, flatCut, flatReports bool, bal *loadbal.Config) (*session.RunReport, error) {
	topo, err := comm.ContiguousGroups(p, groups)
	if err != nil {
		return nil, err
	}
	s, err := session.New(context.Background(), g, session.Config{
		Procs:       p,
		Clock:       vtime.NewSim(),
		Model:       comm.Ethernet(opts.netScale()),
		Topology:    topo,
		InterModel:  comm.Ethernet(opts.netScale() * interScale),
		FlatCut:     flatCut,
		FlatReports: flatReports,
		ComputeCost: hierCompute(opts),
		WorkRep:     1,
		Balancer:    bal,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(iters)
}

// TableHierStatic is Table 4's two-level twin: the static loop on a
// dumbbell mesh across increasing inter-group slowdowns, flat cut vs
// hierarchy-aware cut. On a uniform network the flat cut's better
// balance wins by a hair; as the slow link thins, the wide ghost
// frontier the flat cut drags across it takes over and the
// hierarchical cut — which slides the group boundary onto the
// dumbbell's bridge — crosses over to win.
func TableHierStatic(opts Options) (*Table, error) {
	groups := hierGroupCount(opts)
	iters := 30
	scales := []float64{1, 4, 16, 64}
	if opts.Quick {
		iters = 10
		scales = []float64{1, 16}
	}
	g, err := dumbbellMesh(1100, 900, 300)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table H1",
		Title: "Static parallel loop on a two-level cluster: flat vs hierarchy-aware cut",
		Header: []string{
			"Inter-group slowdown", "Flat cut", "Hier cut", "Speedup",
			"Flat slow-link bytes", "Hier slow-link bytes",
		},
		Notes: []string{
			fmt.Sprintf("%d workstations in %d groups, %d iterations, dumbbell mesh of %d vertices, Ethernet model x%g, virtual clock",
				hierProcs, groups, iters, g.N, opts.netScale()),
			"the hierarchy-aware cut refines the group boundary onto the dumbbell's bridge (1 cut edge) at the price of a larger group; the flat cut balances perfectly but drags a ~300-vertex ghost frontier across the slow link",
			"speedup < 1 on the uniform network (balance wins), > 1 once the link slows (slow-link bytes win) — the crossover hierarchy-aware cutting exists for",
		},
	}
	for _, scale := range scales {
		flat, err := MeasureHierRun(g, opts, hierProcs, groups, iters, scale, true, false, nil)
		if err != nil {
			return nil, err
		}
		hier, err := MeasureHierRun(g, opts, hierProcs, groups, iters, scale, false, false, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("x%g", scale),
			seconds(flat.Wall.Seconds()), seconds(hier.Wall.Seconds()),
			fmt.Sprintf("%.2f", flat.Wall.Seconds()/hier.Wall.Seconds()),
			fmt.Sprintf("%d", flat.InterBytes), fmt.Sprintf("%d", hier.InterBytes),
		})
	}
	return t, nil
}

// TableHierChecks is Table 5's two-level twin: what one decentralized
// balance check costs the slow inter-group link. The flat all-gather
// puts O(P) messages on it per check; the leader-aggregated exchange
// puts G·(G−1) there. Message counts are exact deltas against a
// balancer-free baseline of the identical run, so the per-check cost
// is a measurement, not an estimate.
func TableHierChecks(opts Options) (*Table, error) {
	const p = hierChecksProcs
	groups := hierGroupCount(opts)
	const checkEvery = 10
	iters := 30
	if opts.Quick {
		iters = 20
	}
	nChecks := (iters - 1) / checkEvery // the final boundary's check is deferred
	g, err := dumbbellMesh(1100, 900, 300)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table H2",
		Title: "Slow-link cost of one decentralized balance check: flat all-gather vs leader aggregation",
		Header: []string{
			"Exchange", "Slow-link msgs/check", "Slow-link bytes/check", "Wall",
		},
		Notes: []string{
			fmt.Sprintf("%d workstations in %d groups, %d checks over %d iterations, uniform environment (no remaps), virtual clock",
				p, groups, nChecks, iters),
			fmt.Sprintf("flat all-gather costs P = %d slow-link messages per check; leader aggregation costs G(G-1) = %d",
				p, groups*(groups-1)),
		},
	}
	base, err := MeasureHierRun(g, opts, p, groups, iters, 16, false, false, nil)
	if err != nil {
		return nil, err
	}
	for _, arm := range []struct {
		name        string
		flatReports bool
	}{
		{"flat all-gather", true},
		{"leader-aggregated", false},
	} {
		rep, err := MeasureHierRun(g, opts, p, groups, iters, 16, false, arm.flatReports,
			&loadbal.Config{Decentralized: true})
		if err != nil {
			return nil, err
		}
		if got := len(rep.Checks); got != nChecks {
			return nil, fmt.Errorf("bench: %s arm ran %d checks, expected %d", arm.name, got, nChecks)
		}
		t.Rows = append(t.Rows, []string{
			arm.name,
			fmt.Sprintf("%d", (rep.InterMsgs-base.InterMsgs)/int64(nChecks)),
			fmt.Sprintf("%d", (rep.InterBytes-base.InterBytes)/int64(nChecks)),
			seconds(rep.Wall.Seconds()),
		})
	}
	return t, nil
}
