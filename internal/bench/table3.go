package bench

import (
	"fmt"
	"time"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/sched"
)

// table3Paper holds the paper's published schedule-build times
// (seconds) for workstation sets {1,2}..{1-5}.
var table3Paper = map[int]map[string]float64{
	2: {"sort1": 0.247, "sort2": 0.236, "simple": 0.2},
	3: {"sort1": 0.171, "sort2": 0.169, "simple": 0.188},
	4: {"sort1": 0.136, "sort2": 0.130, "simple": 0.176},
	5: {"sort1": 0.131, "sort2": 0.125, "simple": 0.290},
}

// benchMesh returns the evaluation mesh: the paper-scale honeycomb
// (30269 vertices) or a reduced one in quick mode, already transformed
// by the spectral-style locality index the paper used (RCB here; both
// produce interval-friendly orders).
func benchMesh(opts Options) (*graph.Graph, error) {
	var g *graph.Graph
	var err error
	if opts.Quick {
		g, err = mesh.Honeycomb(100, 180)
	} else {
		g = mesh.Paper()
	}
	if err != nil {
		return nil, err
	}
	perm, err := order.RCB(g)
	if err != nil {
		return nil, err
	}
	return g.Permute(perm)
}

// refsFor extracts one rank's access pattern from a transformed graph.
func refsFor(g *graph.Graph, layout *partition.Layout, rank int) sched.Refs {
	iv := layout.Interval(rank)
	r := sched.Refs{Xadj: make([]int32, 1, iv.Len()+1)}
	for gg := iv.Lo; gg < iv.Hi; gg++ {
		for _, w := range g.Neighbors(int(gg)) {
			r.Adj = append(r.Adj, int64(w))
		}
		r.Xadj = append(r.Xadj, int32(len(r.Adj)))
	}
	return r
}

// MeasureScheduleBuild times one collective schedule construction on
// the given transformed mesh for p workstations. For the sorting
// strategies the build is communication-free and the cost is the
// slowest rank's; for the simple strategy the two message rounds run
// over the modeled Ethernet.
func MeasureScheduleBuild(g *graph.Graph, p int, strategy string, netScale float64) (time.Duration, error) {
	layout, err := partition.NewUniform(int64(g.N), p)
	if err != nil {
		return 0, err
	}
	switch strategy {
	case "sort1", "sort2":
		var maxRank time.Duration
		for rank := 0; rank < p; rank++ {
			refs := refsFor(g, layout, rank)
			start := time.Now()
			if strategy == "sort1" {
				_, err = sched.BuildSort1(layout, rank, refs)
			} else {
				_, err = sched.BuildSort2(layout, rank, refs)
			}
			if err != nil {
				return 0, err
			}
			if d := time.Since(start); d > maxRank {
				maxRank = d
			}
		}
		return maxRank, nil
	case "simple":
		ws, err := comm.NewWorld(p, comm.Ethernet(netScale))
		if err != nil {
			return 0, err
		}
		defer comm.CloseWorld(ws)
		allRefs := make([]sched.Refs, p)
		for rank := 0; rank < p; rank++ {
			allRefs[rank] = refsFor(g, layout, rank)
		}
		var elapsed time.Duration
		err = comm.SPMD(ws, func(c *comm.Comm) error {
			if err := c.Barrier(0x311); err != nil {
				return err
			}
			start := time.Now()
			if _, err := sched.BuildSimple(c, layout, allRefs[c.Rank()]); err != nil {
				return err
			}
			if err := c.Barrier(0x312); err != nil {
				return err
			}
			if c.Rank() == 0 {
				elapsed = time.Since(start)
			}
			return nil
		})
		return elapsed, err
	}
	return 0, fmt.Errorf("bench: unknown strategy %q", strategy)
}

// Table3 reproduces "Time required for building communication
// schedules": the sorting-based builders get cheaper as processors are
// added (each holds less data), while the simple strategy's message
// setups grow with the processor count — the crossover the paper
// reports between 3 and 4 workstations.
func Table3(opts Options) (*Table, error) {
	g, err := benchMesh(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 3",
		Title: "Time to build communication schedules (seconds)",
		Header: []string{
			"Workstations",
			"Paper Sort1", "Paper Sort2", "Paper Simple",
			"Sort1", "Sort2", "Simple",
		},
		Notes: []string{
			fmt.Sprintf("mesh: %d vertices, %d edges; Ethernet model x%g", g.N, g.NumEdges(), opts.netScale()),
		},
	}
	reps := 5
	if opts.Quick {
		reps = 2
	}
	for _, p := range []int{2, 3, 4, 5} {
		row := []string{fmt.Sprintf("1..%d", p)}
		for _, s := range []string{"sort1", "sort2", "simple"} {
			row = append(row, seconds(table3Paper[p][s]))
		}
		for _, s := range []string{"sort1", "sort2", "simple"} {
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				d, err := MeasureScheduleBuild(g, p, s, opts.netScale())
				if err != nil {
					return nil, err
				}
				if d < best {
					best = d
				}
			}
			row = append(row, seconds(best.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
