package bench

// The allocation-regression gate: the executor's steady-state replay
// path — synchronous and split-phase — must allocate nothing once the
// plan's wire buffers and the transport's receive pools are warm.
// PR 2 established the invariant with benchmarks, but benchmarks only
// report allocs/op without failing on them; this test pins
// testing.AllocsPerRun == 0 so a regression fails CI instead of
// rotting silently.
//
// testing.AllocsPerRun counts mallocs process-wide and pins
// GOMAXPROCS to 1, so the SPMD section cannot be spawned inside the
// measured function (goroutine startup allocates). Instead the ranks
// run as persistent workers driven over pre-allocated channels: the
// measured function triggers one collective operation and waits for
// every rank to finish, which in the steady state costs zero
// allocations end to end.
//
// Deliberately NOT -short-gated: the gate must run in CI. It skips
// only under the race detector, whose instrumentation perturbs
// allocation counts; CI runs it in a dedicated no-race step.

import (
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
)

// allocOp is one rank's share of a collective executor operation.
type allocOp func(rt *core.Runtime, vs []*core.Vector) error

// allocHarness drives a warm world through executor operations with
// persistent per-rank workers.
type allocHarness struct {
	p    int
	reqs []chan allocOp
	done []chan error
}

func newAllocHarness(t *testing.T, p, nvecs int) *allocHarness {
	t.Helper()
	g, err := mesh.Honeycomb(30, 40)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { comm.CloseWorld(ws) })
	h := &allocHarness{p: p, reqs: make([]chan allocOp, p), done: make([]chan error, p)}
	ready := make(chan error, p)
	for i := 0; i < p; i++ {
		h.reqs[i] = make(chan allocOp)
		h.done[i] = make(chan error, 1)
		go func(c *comm.Comm, req chan allocOp, done chan error) {
			rt, err := core.New(c, g, core.Config{Order: order.RCB})
			if err != nil {
				ready <- err
				return
			}
			vs := make([]*core.Vector, nvecs)
			for j := range vs {
				vs[j] = rt.NewVector()
				off := float64(j)
				vs[j].SetByGlobal(func(gid int64) float64 { return float64(gid%89) + off })
			}
			ready <- nil
			for op := range req {
				done <- op(rt, vs)
			}
		}(ws[i], h.reqs[i], h.done[i])
	}
	for i := 0; i < p; i++ {
		if err := <-ready; err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, req := range h.reqs {
			close(req)
		}
	})
	return h
}

// run triggers op collectively and waits for every rank.
func (h *allocHarness) run(t *testing.T, op allocOp) {
	for _, req := range h.reqs {
		req <- op
	}
	for _, done := range h.done {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecutorZeroAlloc asserts zero steady-state allocations for
// every executor replay operation, synchronous and split-phase.
func TestExecutorZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector; CI runs this in a no-race step")
	}
	ops := []struct {
		name string
		op   allocOp
	}{
		{"Exchange", func(rt *core.Runtime, vs []*core.Vector) error {
			return rt.Exchange(vs[0])
		}},
		{"ScatterAdd", func(rt *core.Runtime, vs []*core.Vector) error {
			return rt.ScatterAdd(vs[0])
		}},
		{"ExchangeAll", func(rt *core.Runtime, vs []*core.Vector) error {
			return rt.ExchangeAll(vs...)
		}},
		{"ScatterAddAll", func(rt *core.Runtime, vs []*core.Vector) error {
			return rt.ScatterAddAll(vs...)
		}},
		{"ExchangeStartWait", func(rt *core.Runtime, vs []*core.Vector) error {
			h, err := rt.ExchangeStart(vs[0])
			if err != nil {
				return err
			}
			return h.Wait()
		}},
		{"ScatterAddStartWait", func(rt *core.Runtime, vs []*core.Vector) error {
			h, err := rt.ScatterAddStart(vs[0])
			if err != nil {
				return err
			}
			return h.Wait()
		}},
		{"ExchangeAllStartWait", func(rt *core.Runtime, vs []*core.Vector) error {
			h, err := rt.ExchangeAllStart(vs...)
			if err != nil {
				return err
			}
			return h.Wait()
		}},
		{"ScatterAddAllStartWait", func(rt *core.Runtime, vs []*core.Vector) error {
			h, err := rt.ScatterAddAllStart(vs...)
			if err != nil {
				return err
			}
			return h.Wait()
		}},
		// Multi-handle pipelining: two independent ops in flight at
		// once, drained out of start order — the regime PR 7 adds. Both
		// must stay allocation-free too: handles come from the pool and
		// the rotating-tag mailbox slots are warm.
		{"TwoExchangesPipelined", func(rt *core.Runtime, vs []*core.Vector) error {
			h0, err := rt.ExchangeStart(vs[0])
			if err != nil {
				return err
			}
			h1, err := rt.ExchangeStart(vs[1])
			if err != nil {
				return err
			}
			if err := h1.Wait(); err != nil {
				return err
			}
			return h0.Wait()
		}},
		{"ExchangeScatterPipelined", func(rt *core.Runtime, vs []*core.Vector) error {
			h0, err := rt.ExchangeStart(vs[0])
			if err != nil {
				return err
			}
			h1, err := rt.ScatterAddStart(vs[1])
			if err != nil {
				return err
			}
			if err := h1.Wait(); err != nil {
				return err
			}
			return h0.Wait()
		}},
	}
	for _, p := range []int{2, 4} {
		h := newAllocHarness(t, p, 3)
		// Warm every path first: wire buffers grow to the coalesced
		// size, receive pools fill, handle pools and scratch are
		// retained.
		for _, op := range ops {
			for i := 0; i < 4; i++ {
				h.run(t, op.op)
			}
		}
		// Handle-based ops rotate through the 64-tag wire window and the
		// transport allocates its per-(source, tag) mailbox slot lazily,
		// so spin the full window once for each replay direction before
		// measuring.
		h.run(t, func(rt *core.Runtime, vs []*core.Vector) error {
			for i := 0; i < 64; i++ {
				hd, err := rt.ExchangeStart(vs[0])
				if err != nil {
					return err
				}
				if err := hd.Wait(); err != nil {
					return err
				}
			}
			for i := 0; i < 64; i++ {
				hd, err := rt.ScatterAddStart(vs[0])
				if err != nil {
					return err
				}
				if err := hd.Wait(); err != nil {
					return err
				}
			}
			return nil
		})
		for _, op := range ops {
			op := op
			avg := testing.AllocsPerRun(20, func() { h.run(t, op.op) })
			if avg != 0 {
				t.Errorf("p=%d %s: %.1f allocs/run in the steady state, want 0", p, op.name, avg)
			}
		}
	}
}
