package bench

import (
	"strconv"
	"testing"
)

// hierOpts: quick scale, the paper's unscaled Ethernet, and the twins'
// default heavy compute — the regime whose crossover the shape test
// pins. (virtualOpts would override ComputeCost and flatten it; the
// twins always run virtually anyway.)
func hierOpts() Options {
	return Options{Quick: true, Seed: 7}
}

func cellInt(t *testing.T, tab *Table, row int, col string) int64 {
	t.Helper()
	s, err := tab.Cell(row, col)
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("cell %q not an integer: %v", s, err)
	}
	return v
}

// TestTableHierStaticShape pins the crossover the hierarchy-aware cut
// exists for: on the uniform network the flat cut's better balance
// wins (speedup < 1), on the slowed inter-group link the hierarchical
// cut wins (speedup > 1), and its slow-link byte footprint is a tiny
// fraction of the flat cut's at every scale.
func TestTableHierStaticShape(t *testing.T) {
	tab, err := TableHierStatic(hierOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("%d rows, want at least the uniform and slowed scales", len(tab.Rows))
	}
	first := cellSeconds(t, tab, 0, "Speedup")
	last := cellSeconds(t, tab, len(tab.Rows)-1, "Speedup")
	if first >= 1 {
		t.Errorf("uniform network: hierarchical cut should lose on balance, got speedup %.2f", first)
	}
	if last <= 1 {
		t.Errorf("slowed inter-group link: hierarchical cut should win, got speedup %.2f", last)
	}
	for row := range tab.Rows {
		flat := cellInt(t, tab, row, "Flat slow-link bytes")
		hier := cellInt(t, tab, row, "Hier slow-link bytes")
		if hier*10 >= flat {
			t.Errorf("row %d: hierarchical cut's slow-link bytes %d not <10%% of flat's %d", row, hier, flat)
		}
	}
}

// TestTableHierChecksShape pins the exact slow-link price of a
// decentralized balance check: P messages under the flat all-gather,
// G·(G−1) under the leader aggregation.
func TestTableHierChecksShape(t *testing.T) {
	tab, err := TableHierChecks(hierOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want flat and leader arms", len(tab.Rows))
	}
	if got := cellInt(t, tab, 0, "Slow-link msgs/check"); got != hierChecksProcs {
		t.Errorf("flat all-gather check costs %d slow-link messages, want P = %d", got, hierChecksProcs)
	}
	if got := cellInt(t, tab, 1, "Slow-link msgs/check"); got != 2 {
		t.Errorf("leader-aggregated check costs %d slow-link messages, want G(G-1) = 2", got)
	}
	if fb, lb := cellInt(t, tab, 0, "Slow-link bytes/check"), cellInt(t, tab, 1, "Slow-link bytes/check"); lb >= fb {
		t.Errorf("leader exchange puts %d bytes/check on the slow link, flat %d — no saving", lb, fb)
	}
}
