package bench

import (
	"context"
	"fmt"

	"stance/internal/comm"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/metrics"
	"stance/internal/session"
)

// table4Paper holds the paper's published static-environment times and
// efficiencies for 500 iterations.
var table4Paper = map[int][2]float64{
	1: {97.61, 1}, 2: {55.68, 0.88}, 3: {42.27, 0.77}, 4: {34.06, 0.72}, 5: {31.50, 0.62},
}

// staticIters and staticWorkRep set the experiment scale: the paper
// ran 500 iterations at SUN4 speed; we run fewer iterations of an
// amplified kernel so compute-to-communication ratios stay in the
// paper's regime.
func staticScale(opts Options) (iters, workRep int) {
	if opts.Quick {
		return 5, 200
	}
	// workRep 2500 puts the sequential per-iteration time near the
	// paper's ~195 ms (97.61s / 500 iterations), so the
	// compute-to-Ethernet ratio lands in the paper's regime.
	return 20, 2500
}

// MeasureStaticRun runs iters solver iterations on p equally fast,
// unloaded workstations over the modeled Ethernet, returning the
// session report (Wall is rank 0's barrier-to-barrier time; Exec the
// executor's own traffic counters). overlap selects the split-phase
// executor.
func MeasureStaticRun(g *graph.Graph, p, iters, workRep int, netScale float64, overlap bool) (*session.RunReport, error) {
	return measureRun(g, hetero.Uniform(p), p, iters, workRep,
		Options{NetScale: netScale, Overlap: overlap}, nil)
}

// measureRun executes an iterative solve through the session driver
// and returns its report (Wall is rank 0's barrier-to-barrier time on
// opts.Clock). bal (if non-nil) enables the paper's periodic
// load-balance protocol: a check every 10 iterations, remapping when
// profitable.
func measureRun(g *graph.Graph, env *hetero.Env, p, iters, workRep int,
	opts Options, bal *loadbal.Config) (*session.RunReport, error) {
	s, err := session.New(context.Background(), g, session.Config{
		Procs:       p,
		Transport:   opts.Transport,
		Tuning:      opts.Tuning,
		Model:       comm.Ethernet(opts.netScale()),
		Clock:       opts.Clock,
		ComputeCost: opts.ComputeCost,
		Env:         env,
		WorkRep:     workRep,
		Overlap:     opts.Overlap,
		Pipeline:    opts.Pipeline,
		Fields:      opts.Fields,
		Balancer:    bal,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(iters)
}

// Table4 reproduces "Execution time of the parallel loop in static
// environments": wall time and nonuniform-environment efficiency
// (Section 4) for clusters of 1..5 equally fast workstations.
func Table4(opts Options) (*Table, error) {
	g, err := benchMesh(opts)
	if err != nil {
		return nil, err
	}
	iters, workRep := staticScale(opts)
	t := &Table{
		ID:    "Table 4",
		Title: "Parallel loop in a static environment",
		Header: []string{
			"Workstations", "Paper Time", "Paper Eff",
			"Measured Time", "Measured Eff",
		},
		Notes: []string{
			fmt.Sprintf("%d iterations, work amplification %d, mesh %d vertices, Ethernet model x%g",
				iters, workRep, g.N, opts.netScale()),
			"paper: 500 iterations on SUN4s; efficiency E = (1/Tpar)/sum(1/Ti)",
		},
	}
	if opts.Overlap {
		t.Notes = append(t.Notes, "split-phase overlapped executor (Phase C′)")
	}
	if opts.Pipeline > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("software-pipelined executor, depth %d", opts.Pipeline))
	}
	var t1 float64
	for _, p := range []int{1, 2, 3, 4, 5} {
		rep, err := measureRun(g, hetero.Uniform(p), p, iters, workRep, opts, nil)
		if err != nil {
			return nil, err
		}
		tp := rep.Wall.Seconds()
		if p == 1 {
			t1 = tp
		}
		seq := make([]float64, p)
		for i := range seq {
			seq[i] = t1
		}
		eff, err := metrics.EfficiencyStatic(tp, seq)
		if err != nil {
			return nil, err
		}
		paper := table4Paper[p]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("1..%d", p),
			seconds(paper[0]), fmt.Sprintf("%.2f", paper[1]),
			seconds(tp), fmt.Sprintf("%.2f", eff),
		})
	}
	return t, nil
}
