package bench

// Pipeline benchmarks: the handle-based software-pipelined executor
// against Phase C′ overlap and the synchronous baseline under an
// injected delivery delay, on a multi-field kernel. Overlap hides one
// exchange behind one field's interior sweep but still serializes the
// fields' exchanges — each field waits out its own delay when the
// sweep is shorter than the flight time. The pipelined executor keeps
// every field's exchange in flight at once (and, at depth >= 2,
// restarts a field's exchange the moment its update completes), so the
// per-iteration delay exposure collapses from fields × delay to one
// delay. This is PR 7's measured-win acceptance criterion — compare
// executor=overlap with executor=pipeline in bench.json.

import (
	"context"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/session"
	"stance/internal/vtime"
)

// pipelineModes are the three executor configurations the benchmarks
// sweep, all on the same two-field kernel so the compute is identical.
var pipelineModes = []struct {
	name     string
	overlap  bool
	pipeline int
}{
	{"executor=sync", false, 0},
	{"executor=overlap", true, 0},
	{"executor=pipeline", false, 2},
}

// BenchmarkPipelineLatencyHiding measures whole two-field solver
// iterations under the injected delivery delay, with compute too small
// to cover the flight time: the overlapped executor pays ~2 delays per
// iteration (one per field, serialized), the pipelined one ~1 (both
// exchanges in flight together).
func BenchmarkPipelineLatencyHiding(b *testing.B) {
	for _, mode := range pipelineModes {
		b.Run(mode.name, func(b *testing.B) {
			g, err := mesh.Honeycomb(60, 100)
			if err != nil {
				b.Fatal(err)
			}
			s, err := session.New(context.Background(), g, session.Config{
				Procs:     4,
				Model:     &comm.Model{Delay: benchDelay},
				OrderName: "rcb",
				Fields:    2,
				Overlap:   mode.overlap,
				Pipeline:  mode.pipeline,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Warm the plan's wire buffers, handle pools and the
			// rotating-tag mailbox slots.
			if _, err := s.Run(2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			rep, err := s.Run(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if mode.overlap || mode.pipeline > 0 {
				b.ReportMetric(float64(rep.Exec.Idle.Nanoseconds())/float64(b.N), "idle-ns/op")
			}
			if mode.pipeline > 0 && rep.Exec.Pipelined == 0 {
				b.Fatal("pipelined run recorded no pipelined ops")
			}
		})
	}
}

// TestPipelineLatencyHidingVirtual is the exact acceptance assertion
// on a simulated clock: a 4-rank two-field session under a 5ms one-way
// delay with compute far smaller than the flight time. Every quantity
// is virtual and deterministic, so the bounds cannot flake. The
// pipelined executor must beat Phase C′ overlap by at least 10%
// virtual wall time, with the aggregate handle Idle shrinking, because
// overlap serializes the two fields' exchanges (≈2 delays/iteration)
// while the pipeline flies them together (≈1 delay/iteration).
func TestPipelineLatencyHidingVirtual(t *testing.T) {
	const iters = 30
	run := func(overlap bool, pipeline int) *session.RunReport {
		g, err := mesh.Honeycomb(60, 100)
		if err != nil {
			t.Fatal(err)
		}
		s, err := session.New(context.Background(), g, session.Config{
			Procs:       4,
			Model:       &comm.Model{Delay: benchDelay},
			Clock:       vtime.NewSim(),
			OrderName:   "rcb",
			ComputeCost: 500 * time.Nanosecond,
			Fields:      2,
			Overlap:     overlap,
			Pipeline:    pipeline,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(2); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	wall := time.Now()
	sync := run(false, 0)
	ov := run(true, 0)
	pipe := run(false, 2)
	t.Logf("virtual: sync %v, overlap %v (idle %v), pipeline %v (idle %v, %d pipelined of %d ops) in %v real",
		sync.Wall, ov.Wall, ov.Exec.Idle, pipe.Wall, pipe.Exec.Idle,
		pipe.Exec.Pipelined, pipe.Exec.Ops, time.Since(wall))
	if pipe.Exec.Pipelined == 0 {
		t.Fatal("pipelined run recorded no ops issued while another was in flight")
	}
	if ov.Exec.Pipelined != 0 || sync.Exec.Pipelined != 0 {
		t.Fatalf("non-pipelined runs recorded pipelined ops: overlap %d, sync %d",
			ov.Exec.Pipelined, sync.Exec.Pipelined)
	}
	// The headline acceptance bound: >= 10% virtual wall reduction over
	// the overlapped executor on the same kernel and network.
	if pipe.Wall > ov.Wall-ov.Wall/10 {
		t.Errorf("pipelined run took %v virtual, overlapped %v; pipelining should beat overlap by >=10%% under a %v one-way delay",
			pipe.Wall, ov.Wall, benchDelay)
	}
	if pipe.Wall > sync.Wall-sync.Wall/10 {
		t.Errorf("pipelined run took %v virtual, synchronous %v; pipelining should beat synchronous by >=10%%",
			pipe.Wall, sync.Wall)
	}
	// Flying the fields' exchanges together also shrinks the blocked
	// drain time itself: only the first Wait of an iteration eats the
	// delay, the others find their arrivals already queued.
	if pipe.Exec.Idle >= ov.Exec.Idle {
		t.Errorf("pipelined handles idled %v, overlap idled %v; concurrent flights should shrink the blocked drain time",
			pipe.Exec.Idle, ov.Exec.Idle)
	}
}
