//go:build race

package bench

// raceEnabled reports that this binary was built with -race; the
// allocation gate skips itself there (instrumentation perturbs
// allocation counts), and CI runs it in a separate no-race step.
const raceEnabled = true
