package bench

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"stance/internal/partition"
	"stance/internal/redist"
)

func quickOpts() Options {
	return Options{Quick: true, NetScale: 0.2, Seed: 7}
}

// virtualOpts are the quick settings on a simulated clock: the solver
// tables measure exact virtual durations, run in milliseconds of real
// time, and produce identical numbers on every run — which is what
// lets the tests below assert the paper's wall-clock shapes (speedup
// with more workstations, LB beating no-LB) that used to be too flaky
// to assert on shared runners.
func virtualOpts() Options {
	return quickOpts().Virtual(time.Microsecond)
}

func cellSeconds(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s, err := tab.Cell(row, col)
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// MCR time must grow with p (the O(p^3) scaling) and stay small
	// even at 20 workstations, the paper's headline observation.
	t3 := cellSeconds(t, tab, 0, "Measured")
	t20 := cellSeconds(t, tab, 4, "Measured")
	if t20 <= t3 {
		t.Errorf("MCR at p=20 (%g) not slower than p=3 (%g)", t20, t3)
	}
	if t20 > 0.1 {
		t.Errorf("MCR at p=20 took %gs, want well under 0.1s", t20)
	}
	out := tab.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Workstations") {
		t.Errorf("rendering missing pieces:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 sizes x 3 worker sets in quick mode
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Wall-clock cells at quick sizes sit inside scheduler and
	// sleep-granularity noise — especially when the whole test suite
	// runs in parallel — so the timings are only checked for
	// plausibility; the paper's claim (MCR reduces remap cost) is
	// asserted on the deterministic ground truth below, and the real
	// timing comparison lives in the full stance-bench run.
	for row := range tab.Rows {
		for _, col := range []string{"Measured MCR", "Measured no-MCR"} {
			if v := cellSeconds(t, tab, row, col); v <= 0 || v > 5 {
				t.Errorf("row %d: %s = %g, want a plausible duration", row, col, v)
			}
		}
	}
	// Deterministic shape check: on the exact instances the harness
	// measured (same seed, same draw), MCR must move strictly less
	// data in aggregate.
	opts := quickOpts()
	var movedMCR, movedNone int64
	for _, size := range []int64{512, 2048, 16384} {
		for _, p := range []int{3, 4, 5} {
			rng := rand.New(rand.NewSource(opts.Seed))
			for s := 0; s < 5; s++ {
				old, err := partition.NewBlock(size, randWeights(rng, p))
				if err != nil {
					t.Fatal(err)
				}
				newW := randWeights(rng, p)
				mcr, err := redist.Iterated(old, newW, redist.OverlapCost, 0)
				if err != nil {
					t.Fatal(err)
				}
				keep, err := partition.New(size, newW, old.Arrangement())
				if err != nil {
					t.Fatal(err)
				}
				a, err := partition.Moved(old, mcr)
				if err != nil {
					t.Fatal(err)
				}
				b, err := partition.Moved(old, keep)
				if err != nil {
					t.Fatal(err)
				}
				if a > b {
					t.Fatalf("size %d p %d sample %d: MCR moved %d > keep %d", size, p, s, a, b)
				}
				movedMCR += a
				movedNone += b
			}
		}
	}
	if movedMCR >= movedNone {
		t.Errorf("aggregate moved: MCR %d not less than keep-arrangement %d", movedMCR, movedNone)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The robust shapes: the simple strategy gets more expensive as
	// workstations are added (message setups over the modeled network
	// dominate), and the sorting strategies beat it decisively at 5
	// workstations. The paper's downward sortN trend is sub-millisecond
	// on modern hardware and drowns in timer noise, so it is not
	// asserted (see EXPERIMENTS.md, Table 3).
	simpleAt2 := cellSeconds(t, tab, 0, "Simple")
	simpleAt5 := cellSeconds(t, tab, 3, "Simple")
	if simpleAt5 <= simpleAt2 {
		t.Errorf("Simple did not get dearer with more workstations: %g -> %g", simpleAt2, simpleAt5)
	}
	for _, col := range []string{"Sort1", "Sort2"} {
		at5 := cellSeconds(t, tab, 3, col)
		if at5 >= simpleAt5/2 {
			t.Errorf("%s (%g) not well under Simple (%g) at 5 workstations", col, at5, simpleAt5)
		}
		if at5 > 0.05 {
			t.Errorf("%s build took %gs on the quick mesh, want well under 50ms", col, at5)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	// The virtual clock restores the assertions that were flaky as
	// wall-clock measurements: the static experiment's time must
	// strictly shrink as workstations are added (the paper's headline
	// speedup), efficiency stays in (0, 1], and the single-workstation
	// efficiency is 1 by construction. All cells are exact virtual
	// durations, identical on every run.
	tab, err := Table4(virtualOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := 0.0
	for row := range tab.Rows {
		v := cellSeconds(t, tab, row, "Measured Time")
		if v <= 0 {
			t.Errorf("row %d: Measured Time = %g, want > 0", row, v)
		}
		if row > 0 && v >= prev {
			t.Errorf("row %d: adding a workstation did not speed the loop up: %g -> %g", row, prev, v)
		}
		prev = v
		if e := cellSeconds(t, tab, row, "Measured Eff"); e <= 0 || e > 1.01 {
			t.Errorf("row %d: Measured Eff = %g, want in (0, 1]", row, e)
		}
	}
	if e1 := cellSeconds(t, tab, 0, "Measured Eff"); e1 < 0.99 {
		t.Errorf("single-workstation efficiency %g, want 1", e1)
	}
}

// TestTable4Deterministic: the virtual-clock table reproduces exactly
// — every formatted cell, run to run.
func TestTable4Deterministic(t *testing.T) {
	a, err := Table4(virtualOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table4(virtualOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("virtual Table 4 not reproducible:\n%s\nvs\n%s", a, b)
	}
}

func TestMeasureStaticRunReport(t *testing.T) {
	// The deterministic structure behind Table 4: the run executes
	// exactly the requested iterations, performs no balance checks, and
	// its executor traffic replays the same schedule every iteration —
	// one Exchange per rank per iteration, a whole number of f64s on
	// the wire, and nothing at all on a single workstation. Runs on the
	// virtual clock, so it costs milliseconds.
	opts := virtualOpts()
	g, err := benchMesh(opts)
	if err != nil {
		t.Fatal(err)
	}
	const p, iters = 3, 4
	rep, err := measureRun(g, nil, p, iters, 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iters != iters {
		t.Errorf("Iters = %d, want %d", rep.Iters, iters)
	}
	if len(rep.Checks) != 0 {
		t.Errorf("static run recorded %d balance checks", len(rep.Checks))
	}
	if rep.Exec.Ops != p*iters {
		t.Errorf("Exec.Ops = %d, want %d (one Exchange per rank per iteration)", rep.Exec.Ops, p*iters)
	}
	if rep.Exec.Msgs <= 0 || rep.Exec.Msgs%iters != 0 {
		t.Errorf("Exec.Msgs = %d, want a positive multiple of %d iterations", rep.Exec.Msgs, iters)
	}
	if rep.Exec.Bytes <= 0 || rep.Exec.Bytes%8 != 0 {
		t.Errorf("Exec.Bytes = %d, want a positive multiple of 8", rep.Exec.Bytes)
	}
	if rep.Msgs < rep.Exec.Msgs {
		t.Errorf("world Msgs %d < executor Msgs %d", rep.Msgs, rep.Exec.Msgs)
	}
	solo, err := measureRun(g, nil, 1, iters, 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Exec.Msgs != 0 || solo.Exec.Bytes != 0 {
		t.Errorf("single workstation exchanged %d msgs / %d bytes, want none",
			solo.Exec.Msgs, solo.Exec.Bytes)
	}
	if solo.Exec.Ops != iters {
		t.Errorf("single workstation Exec.Ops = %d, want %d", solo.Exec.Ops, iters)
	}
}

func TestTable5Shape(t *testing.T) {
	// On the virtual clock the paper's adaptive-environment claims are
	// assertable again, exactly: a factor-3 imbalance produces a remap
	// whose costs are measured, and — the headline — the load-balanced
	// run beats the unbalanced one in every row. These are exact
	// virtual durations; the wall-clock versions of these comparisons
	// were unreliable on loaded machines.
	tab, err := Table5(virtualOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // seq row + 2 worker sets in quick mode
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for row := 1; row < len(tab.Rows); row++ {
		check := cellSeconds(t, tab, row, "check")
		lbCost := cellSeconds(t, tab, row, "LB cost")
		if check <= 0 || lbCost <= 0 {
			t.Errorf("row %d: costs not measured (check %g, LB %g)", row, check, lbCost)
		}
		lb := cellSeconds(t, tab, row, "LB")
		noLB := cellSeconds(t, tab, row, "no-LB")
		if lb <= 0 || noLB <= 0 {
			t.Errorf("row %d: LB %g / no-LB %g, want > 0", row, lb, noLB)
		}
		if lb >= noLB {
			t.Errorf("row %d: load balancing did not pay: LB %g >= no-LB %g", row, lb, noLB)
		}
	}
}

func TestCellErrors(t *testing.T) {
	tab := &Table{Header: []string{"A"}, Rows: [][]string{{"1"}}}
	if _, err := tab.Cell(0, "B"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tab.Cell(5, "A"); err == nil {
		t.Error("bad row accepted")
	}
	if v, err := tab.Cell(0, "A"); err != nil || v != "1" {
		t.Errorf("Cell = %q, %v", v, err)
	}
}

func TestMeasureAdaptiveReportsRemap(t *testing.T) {
	res, err := MeasureAdaptiveRun(virtualOpts(), 3, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	// On the virtual clock the WithLB < WithoutLB comparison that had
	// to be dropped from the wall-clock version is exact again: the
	// imbalance must trigger at least one check and one remap, both
	// costs must have been measured, the executor must have moved
	// traffic — and balancing must pay.
	if !res.Remapped {
		t.Error("3x imbalance did not trigger a remap")
	}
	if res.WithLB >= res.WithoutLB {
		t.Errorf("load balancing did not pay: %v with vs %v without", res.WithLB, res.WithoutLB)
	}
	if res.Checks < 1 {
		t.Errorf("LB run recorded %d balance checks, want >= 1", res.Checks)
	}
	if res.Remaps < 1 {
		t.Errorf("LB run recorded %d remaps, want >= 1", res.Remaps)
	}
	if res.CheckCost <= 0 || res.LBCost <= 0 {
		t.Errorf("costs not measured (check %v, LB %v)", res.CheckCost, res.LBCost)
	}
	if res.ExecMsgs <= 0 {
		t.Errorf("LB run sent %d executor messages, want > 0", res.ExecMsgs)
	}
}
