package bench

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"stance/internal/partition"
	"stance/internal/redist"
)

func quickOpts() Options {
	return Options{Quick: true, NetScale: 0.2, Seed: 7}
}

func cellSeconds(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s, err := tab.Cell(row, col)
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// MCR time must grow with p (the O(p^3) scaling) and stay small
	// even at 20 workstations, the paper's headline observation.
	t3 := cellSeconds(t, tab, 0, "Measured")
	t20 := cellSeconds(t, tab, 4, "Measured")
	if t20 <= t3 {
		t.Errorf("MCR at p=20 (%g) not slower than p=3 (%g)", t20, t3)
	}
	if t20 > 0.1 {
		t.Errorf("MCR at p=20 took %gs, want well under 0.1s", t20)
	}
	out := tab.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Workstations") {
		t.Errorf("rendering missing pieces:\n%s", out)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 sizes x 3 worker sets in quick mode
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Wall-clock cells at quick sizes sit inside scheduler and
	// sleep-granularity noise — especially when the whole test suite
	// runs in parallel — so the timings are only checked for
	// plausibility; the paper's claim (MCR reduces remap cost) is
	// asserted on the deterministic ground truth below, and the real
	// timing comparison lives in the full stance-bench run.
	for row := range tab.Rows {
		for _, col := range []string{"Measured MCR", "Measured no-MCR"} {
			if v := cellSeconds(t, tab, row, col); v <= 0 || v > 5 {
				t.Errorf("row %d: %s = %g, want a plausible duration", row, col, v)
			}
		}
	}
	// Deterministic shape check: on the exact instances the harness
	// measured (same seed, same draw), MCR must move strictly less
	// data in aggregate.
	opts := quickOpts()
	var movedMCR, movedNone int64
	for _, size := range []int64{512, 2048, 16384} {
		for _, p := range []int{3, 4, 5} {
			rng := rand.New(rand.NewSource(opts.Seed))
			for s := 0; s < 5; s++ {
				old, err := partition.NewBlock(size, randWeights(rng, p))
				if err != nil {
					t.Fatal(err)
				}
				newW := randWeights(rng, p)
				mcr, err := redist.Iterated(old, newW, redist.OverlapCost, 0)
				if err != nil {
					t.Fatal(err)
				}
				keep, err := partition.New(size, newW, old.Arrangement())
				if err != nil {
					t.Fatal(err)
				}
				a, err := partition.Moved(old, mcr)
				if err != nil {
					t.Fatal(err)
				}
				b, err := partition.Moved(old, keep)
				if err != nil {
					t.Fatal(err)
				}
				if a > b {
					t.Fatalf("size %d p %d sample %d: MCR moved %d > keep %d", size, p, s, a, b)
				}
				movedMCR += a
				movedNone += b
			}
		}
	}
	if movedMCR >= movedNone {
		t.Errorf("aggregate moved: MCR %d not less than keep-arrangement %d", movedMCR, movedNone)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The robust shapes: the simple strategy gets more expensive as
	// workstations are added (message setups over the modeled network
	// dominate), and the sorting strategies beat it decisively at 5
	// workstations. The paper's downward sortN trend is sub-millisecond
	// on modern hardware and drowns in timer noise, so it is not
	// asserted (see EXPERIMENTS.md, Table 3).
	simpleAt2 := cellSeconds(t, tab, 0, "Simple")
	simpleAt5 := cellSeconds(t, tab, 3, "Simple")
	if simpleAt5 <= simpleAt2 {
		t.Errorf("Simple did not get dearer with more workstations: %g -> %g", simpleAt2, simpleAt5)
	}
	for _, col := range []string{"Sort1", "Sort2"} {
		at5 := cellSeconds(t, tab, 3, col)
		if at5 >= simpleAt5/2 {
			t.Errorf("%s (%g) not well under Simple (%g) at 5 workstations", col, at5, simpleAt5)
		}
		if at5 > 0.05 {
			t.Errorf("%s build took %gs on the quick mesh, want well under 50ms", col, at5)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if testing.Short() {
		t.Skip("wall-clock speedup assertions are unreliable on loaded/slow machines")
	}
	// Time decreases with processors; efficiency decreases but stays
	// reasonable.
	t1 := cellSeconds(t, tab, 0, "Measured Time")
	t5 := cellSeconds(t, tab, 4, "Measured Time")
	if t5 >= t1 {
		t.Errorf("5 workstations (%g) not faster than 1 (%g)", t5, t1)
	}
	e1 := cellSeconds(t, tab, 0, "Measured Eff")
	e5 := cellSeconds(t, tab, 4, "Measured Eff")
	if e1 < 0.99 {
		t.Errorf("single-workstation efficiency %g, want 1", e1)
	}
	if e5 >= e1 || e5 < 0.2 {
		t.Errorf("efficiency at 5 = %g, want in [0.2, %g)", e5, e1)
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // seq row + 2 worker sets in quick mode
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Deterministic structure first: a factor-3 imbalance must produce
	// a remap, so the check and remap costs are measured in every row.
	for row := 1; row < len(tab.Rows); row++ {
		check := cellSeconds(t, tab, row, "check")
		lbCost := cellSeconds(t, tab, row, "LB cost")
		if check <= 0 || lbCost <= 0 {
			t.Errorf("row %d: costs not measured (check %g, LB %g)", row, check, lbCost)
		}
	}
	if testing.Short() {
		t.Skip("wall-clock LB-gain and cost-ratio assertions are unreliable on loaded/slow machines")
	}
	for row := 1; row < len(tab.Rows); row++ {
		withLB := cellSeconds(t, tab, row, "LB")
		withoutLB := cellSeconds(t, tab, row, "no-LB")
		if withLB >= withoutLB {
			t.Errorf("row %d: load balancing did not help (%g vs %g)", row, withLB, withoutLB)
		}
		// The check is much cheaper than the remap (paper: an order of
		// magnitude).
		check := cellSeconds(t, tab, row, "check")
		lbCost := cellSeconds(t, tab, row, "LB cost")
		if check >= lbCost {
			t.Errorf("row %d: check (%g) not cheaper than remap (%g)", row, check, lbCost)
		}
	}
}

func TestCellErrors(t *testing.T) {
	tab := &Table{Header: []string{"A"}, Rows: [][]string{{"1"}}}
	if _, err := tab.Cell(0, "B"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tab.Cell(5, "A"); err == nil {
		t.Error("bad row accepted")
	}
	if v, err := tab.Cell(0, "A"); err != nil || v != "1" {
		t.Errorf("Cell = %q, %v", v, err)
	}
}

func TestMeasureAdaptiveReportsRemap(t *testing.T) {
	res, err := MeasureAdaptiveRun(quickOpts(), 3, 25, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remapped {
		t.Error("3x imbalance did not trigger a remap")
	}
	if testing.Short() {
		t.Skip("wall-clock LB speedup assertion is unreliable on loaded/slow machines")
	}
	if res.WithLB >= res.WithoutLB {
		t.Errorf("LB run (%v) not faster than static run (%v)", res.WithLB, res.WithoutLB)
	}
}
