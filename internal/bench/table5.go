package bench

import (
	"fmt"
	"time"

	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/redist"
)

// table5Paper holds the paper's published adaptive-environment
// results: [with LB, without LB, check cost, LB cost].
var table5Paper = map[int][4]float64{
	2: {88.96, 166.2, 0.005, 0.58},
	3: {57.22, 115.6, 0.007, 0.39},
	4: {43.52, 92.54, 0.008, 0.19},
	5: {40.56, 79.32, 0.011, 0.17},
}

// table5PaperSeqLoaded is the paper's single loaded workstation time.
const table5PaperSeqLoaded = 290.93

// loadFactor is the competing load on workstation 0 (the paper's
// 290.93/97.61 sequential ratio implies ~3x).
const loadFactor = 3

// AdaptiveResult is one adaptive-environment measurement.
type AdaptiveResult struct {
	WithLB    time.Duration
	WithoutLB time.Duration
	CheckCost time.Duration
	LBCost    time.Duration
	Remapped  bool
	// Checks and Remaps count the LB run's balance checks and actual
	// remaps; ExecMsgs counts the executor messages it sent. These are
	// the structural fields tests assert on — unlike the wall-clock
	// ratios above they do not depend on how loaded the machine is.
	Checks   int
	Remaps   int
	ExecMsgs int64
}

// MeasureAdaptiveRun reproduces the paper's Table 5 protocol on p
// workstations with a constant competing load on workstation 0: (a)
// run all iterations without load balancing; (b) run with the
// decomposition that assumed equal machines and the session driver's
// periodic balance check (every 10 iterations), which remaps when
// profitable.
func MeasureAdaptiveRun(opts Options, p, iters, workRep int) (AdaptiveResult, error) {
	g, err := benchMesh(opts)
	if err != nil {
		return AdaptiveResult{}, err
	}
	env := hetero.PaperAdaptive(p, loadFactor)
	var res AdaptiveResult

	without, err := measureRun(g, env, p, iters, workRep, opts, nil)
	if err != nil {
		return AdaptiveResult{}, err
	}
	res.WithoutLB = without.Wall

	// Horizon is left zero so each periodic check amortizes a remap
	// over the interval until the next check (the session default) —
	// with checks every 10 iterations, a fixed iters-10 horizon would
	// let late checks claim gains the run has no time left to realize.
	scale := opts.netScale()
	var bal *loadbal.Config
	if p > 1 {
		bal = &loadbal.Config{
			CostModel: redist.CostModel{
				PerMessage: 1e-3 * scale,
				PerByte:    scale / 1.25e6,
			},
		}
	}
	with, err := measureRun(g, env, p, iters, workRep, opts, bal)
	if err != nil {
		return AdaptiveResult{}, err
	}
	res.WithLB = with.Wall
	res.Checks = len(with.Checks)
	res.Remaps = len(with.Remaps())
	res.ExecMsgs = with.Exec.Msgs
	if checks := with.Checks; len(checks) > 0 {
		// CheckTime covers report/decide/broadcast only; the remap is
		// timed separately, taken from the first check that remapped
		// (borderline decisions may decline at iter 10 and remap at a
		// later check).
		res.CheckCost = checks[0].Decision.CheckTime
		for _, ev := range checks {
			if ev.Decision.Remapped {
				res.LBCost = ev.Decision.RemapTime
				res.Remapped = true
				break
			}
		}
	}
	return res, nil
}

// adaptiveScale sets Table 5's iteration count: it must exceed the
// paper's 10-iteration warm-up so the check actually fires.
func adaptiveScale(opts Options) (iters, workRep int) {
	if opts.Quick {
		return 15, 200
	}
	// 40 iterations at a reduced amplification: the 10-iteration
	// unbalanced warm-up is a quarter of the run, as close to the
	// paper's 500-iteration amortization as a minute-scale benchmark
	// affords.
	return 40, 1000
}

// Table5 reproduces "Execution time of the parallel loop in an
// adaptive environment": a competing load lands on workstation 1 after
// the mesh was decomposed for equal machines; remapping after 10
// iterations roughly halves the total time, the load-balance check is
// an order of magnitude cheaper than the remap, and the remap costs a
// few iterations' worth of time.
func Table5(opts Options) (*Table, error) {
	iters, workRep := adaptiveScale(opts)
	t := &Table{
		ID:    "Table 5",
		Title: "Parallel loop in an adaptive environment (competing load on workstation 1)",
		Header: []string{
			"Workstations",
			"Paper LB", "Paper no-LB", "Paper check", "Paper LB cost",
			"LB", "no-LB", "check", "LB cost",
		},
		Notes: []string{
			fmt.Sprintf("%d iterations, decomposition assumes equal machines, load factor %d, check after 10 iterations",
				iters, loadFactor),
			"paper: 500 iterations; sequential loaded workstation: 290.93s (vs 97.61s unloaded)",
		},
	}
	if opts.Overlap {
		t.Notes = append(t.Notes, "split-phase overlapped executor (Phase C′)")
	}
	if opts.Pipeline > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("software-pipelined executor, depth %d", opts.Pipeline))
	}
	// The single loaded workstation row.
	g, err := benchMesh(opts)
	if err != nil {
		return nil, err
	}
	seqLoaded, err := measureRun(g, hetero.PaperAdaptive(1, loadFactor), 1, iters, workRep, opts, nil)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"1", "-", seconds(table5PaperSeqLoaded), "-", "-",
		"-", seconds(seqLoaded.Wall.Seconds()), "-", "-",
	})
	ps := []int{2, 3, 4, 5}
	if opts.Quick {
		ps = []int{2, 3}
	}
	for _, p := range ps {
		res, err := MeasureAdaptiveRun(opts, p, iters, workRep)
		if err != nil {
			return nil, err
		}
		paper := table5Paper[p]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("1..%d", p),
			seconds(paper[0]), seconds(paper[1]), seconds(paper[2]), seconds(paper[3]),
			seconds(res.WithLB.Seconds()), seconds(res.WithoutLB.Seconds()),
			seconds(res.CheckCost.Seconds()), seconds(res.LBCost.Seconds()),
		})
	}
	return t, nil
}

// All runs every table, the hierarchical twins included.
func All(opts Options) ([]*Table, error) {
	var out []*Table
	for _, f := range []func(Options) (*Table, error){Table1, Table2, Table3, Table4, Table5, TableHierStatic, TableHierChecks} {
		t, err := f(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
