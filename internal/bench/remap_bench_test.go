package bench

// Redistribution benchmarks: the data path a remap or membership
// transition pays — choose/receive the new layout, build the transfer
// plan, move every registered vector's owned section, and rebuild the
// schedule. BenchmarkRemap alternates between two capability vectors
// so every iteration really moves data (the layouts differ), on a free
// inproc network so the numbers are pure software overhead.

import (
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/partition"
)

// BenchmarkRemap measures a full in-world remap round trip: plan
// build, vector movement over the wire and the inspector rebuild,
// alternating between a skewed and a uniform capability vector.
func BenchmarkRemap(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			h := newExecHarness(b, p, 1)
			// Two weight vectors whose layouts differ: rank 0 twice as
			// capable vs uniform.
			skewed := make([]float64, p)
			uniform := make([]float64, p)
			for i := range skewed {
				skewed[i], uniform[i] = 1, 1
			}
			skewed[0] = 2
			b.ReportAllocs()
			b.ResetTimer()
			err := comm.SPMD(h.ws, func(c *comm.Comm) error {
				rt := h.rts[c.Rank()]
				for i := 0; i < b.N; i++ {
					w := skewed
					if i%2 == 1 {
						w = uniform
					}
					st, err := rt.Remap(w)
					if err != nil {
						return err
					}
					if !st.Changed || st.Moved == 0 {
						return fmt.Errorf("remap %d moved nothing (Changed=%v)", i, st.Changed)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRebind measures the cross-world-size membership data path:
// a p-rank world shrinking onto p-1 survivors and growing back — plan
// build against mismatched world sizes, migration over the parent
// world and the schedule rebuild on each new sub-world — per
// shrink+grow round trip.
func BenchmarkRebind(b *testing.B) {
	for _, p := range []int{3, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			g, err := mesh.Honeycomb(60, 100)
			if err != nil {
				b.Fatal(err)
			}
			world, err := comm.Open("inproc", p, comm.TransportOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { world.Close() })
			rts := make([]*core.Runtime, p)
			err = world.SPMD(nil, func(c *comm.Comm) error {
				rt, err := core.New(c, g, core.Config{Order: order.RCB})
				if err != nil {
					return err
				}
				v := rt.NewVector()
				v.SetByGlobal(func(gid int64) float64 { return float64(gid % 101) })
				rts[c.Rank()] = rt
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			full := make([]int, p)
			for i := range full {
				full[i] = i
			}
			survivors := full[:p-1] // the last rank retires
			wFull := make([]float64, p)
			for i := range wFull {
				wFull[i] = 1
			}
			wShrunk := wFull[:p-1]
			b.ResetTimer()
			err = world.SPMD(nil, func(c *comm.Comm) error {
				rt := rts[c.Rank()]
				fullLayout := rt.Layout()
				for i := 0; i < b.N; i++ {
					shrunkLayout, err := rt.CutLayout(wShrunk)
					if err != nil {
						return err
					}
					if err := rebindTo(c, rt, fullLayout, full, shrunkLayout, survivors); err != nil {
						return err
					}
					if fullLayout, err = rt.CutLayout(wFull); err != nil {
						return err
					}
					if err := rebindTo(c, rt, shrunkLayout, survivors, fullLayout, full); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// rebindTo executes one commit step of the membership protocol —
// cross-world plan, migration, schedule rebuild or park — without the
// control messages (in the benchmark every rank knows both sides).
func rebindTo(c *comm.Comm, rt *core.Runtime, oldLayout *partition.Layout, oldActive []int,
	newLayout *partition.Layout, newActive []int) error {
	var sub *comm.Comm
	var err error
	for _, r := range newActive {
		if r == c.Rank() {
			if sub, err = c.Sub(newActive); err != nil {
				return err
			}
			break
		}
	}
	_, err = rt.Rebind(core.Rebind{
		Carrier:  c,
		Sub:      sub,
		Old:      oldLayout,
		New:      newLayout,
		OldProcs: oldActive,
		NewProcs: newActive,
	})
	return err
}
