// Package bench is the experiment harness: one generator per table in
// the paper's evaluation (Section 5), shared by the stance-bench
// command and the repository's testing.B benchmarks. Each generator
// returns a Table carrying the measured rows next to the paper's
// published numbers, so EXPERIMENTS.md can record paper-vs-measured
// directly from this output.
//
// Absolute numbers differ from the paper's 1995 SUN4/Ethernet cluster;
// the network cost model (comm.Ethernet) reproduces the latency and
// bandwidth regime so the qualitative shape — who wins, by what
// factor, where trends reverse — carries over. Options.NetScale
// uniformly scales the modeled network to keep full runs fast; ratios
// between strategies are unaffected.
package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"stance/internal/comm"
	"stance/internal/vtime"
)

// Options control experiment scale.
type Options struct {
	// Quick shrinks sizes, samples and iteration counts to smoke-test
	// levels (used by tests and -quick runs).
	Quick bool
	// NetScale multiplies the modeled Ethernet's latency and transfer
	// times (1 = the paper's 10 Mbit shared Ethernet; 0.05 = a network
	// 20x faster, keeping full benchmark runs short).
	NetScale float64
	// Seed makes randomized workloads reproducible.
	Seed int64
	// Overlap runs the solver tables (4 and 5) on the split-phase
	// overlapped executor (Phase C′) instead of the synchronous one.
	// Results are bit-for-bit identical; only the schedule of
	// communication against computation changes.
	Overlap bool
	// Pipeline runs the solver tables (4 and 5) on the handle-based
	// software-pipelined executor at the given depth (0 = off). Like
	// Overlap — which it subsumes and is mutually exclusive with — the
	// results stay bit-for-bit identical.
	Pipeline int
	// Fields is the number of independent solution fields the solver
	// advances per iteration (0 or 1 = the paper's single field). With
	// Pipeline set and Fields >= 2, several exchanges fly concurrently.
	Fields int
	// Clock runs the solver tables (4 and 5) on an explicit clock (nil
	// means the real clock). With a vtime.Sim the tables measure exact
	// virtual durations and complete instantly — the deterministic mode
	// the shape tests run in. Tables 1–3 measure real computation
	// (orderings, MCR sweeps, inspector builds) and always use the wall
	// clock.
	Clock vtime.Clock
	// ComputeCost virtualizes the solver tables' per-element compute on
	// the clock (see session.Config.ComputeCost); zero keeps the real
	// spinning kernel.
	ComputeCost time.Duration
	// Transport names the comm transport the solver tables run on (""
	// means "inproc"). Real-socket transports ignore most of the
	// Ethernet model, so absolute numbers shift; the tables stay
	// comparable within one transport.
	Transport string
	// Tuning carries wire-transport options (batching, compression,
	// heartbeats) for socket transports; nil means library defaults.
	Tuning *comm.TransportOptions
	// Groups is the node-group count for the hierarchical twins (Tables
	// H1 and H2); 0 or 1 means the default of 2 groups.
	Groups int
}

// Virtual returns deterministic settings for the solver tables: a
// simulated clock and virtualized compute, so Table 4/5 runs measure
// exact virtual durations in milliseconds of real time.
func (o Options) Virtual(cost time.Duration) Options {
	o.Clock = vtime.NewSim()
	o.ComputeCost = cost
	return o
}

// DefaultOptions returns the settings used for EXPERIMENTS.md: the
// paper's full-speed Ethernet model. Table 2 moves megabytes per
// sample and caps its sample counts to keep the full run around a
// minute.
func DefaultOptions() Options {
	return Options{NetScale: 1, Seed: 1}
}

func (o Options) netScale() float64 {
	if o.NetScale <= 0 {
		return 1
	}
	return o.NetScale
}

// Table is one reproduced experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table for terminals and EXPERIMENTS.md.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Cell looks a value up by row index and column name (tests use it to
// assert on shapes).
func (t *Table) Cell(row int, col string) (string, error) {
	ci := -1
	for i, h := range t.Header {
		if h == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return "", fmt.Errorf("bench: no column %q", col)
	}
	if row < 0 || row >= len(t.Rows) {
		return "", fmt.Errorf("bench: row %d of %d", row, len(t.Rows))
	}
	if ci >= len(t.Rows[row]) {
		return "", fmt.Errorf("bench: row %d has no column %d", row, ci)
	}
	return t.Rows[row][ci], nil
}

// seconds formats a duration in seconds with sensible precision.
func seconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-4:
		return fmt.Sprintf("%.2e", s)
	case s < 0.1:
		return fmt.Sprintf("%.5f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}
