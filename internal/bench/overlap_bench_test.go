package bench

// Overlap benchmarks: the split-phase executor (Phase C′) against the
// synchronous one under an injected network-delay model
// (comm.Model.Delay): every message stays invisible to its receiver
// for a fixed one-way delay, without blocking the sender. A rank that
// exchanges synchronously idles out the full delay every iteration;
// the overlapped mode computes the interior strip through that window.
// This is the ≥1-benchmark-where-overlap-wins acceptance criterion —
// compare executor=sync with executor=overlap in bench.json.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"stance/internal/comm"
	"stance/internal/mesh"
	"stance/internal/session"
	"stance/internal/vtime"
)

// delayedSession builds a 4-rank session over a delay-dominated
// modeled network with enough amplified compute to hide the exchange.
func delayedSession(overlap bool, delay time.Duration) (*session.Session, error) {
	g, err := mesh.Honeycomb(60, 100)
	if err != nil {
		return nil, err
	}
	return session.New(context.Background(), g, session.Config{
		Procs:     4,
		Model:     &comm.Model{Delay: delay},
		OrderName: "rcb",
		WorkRep:   200,
		Overlap:   overlap,
	})
}

// benchDelay is the injected one-way delivery delay. It is chosen to
// dominate one iteration's aggregate compute, so the synchronous
// executor idles a full delay per iteration even on a single-CPU
// machine (where rank compute serializes anyway), while the
// overlapped one fills that window with interior sweeps.
const benchDelay = 5 * time.Millisecond

// BenchmarkOverlapLatencyHiding measures whole solver iterations under
// the injected delivery delay. The overlapped executor should be
// measurably faster than the synchronous one: the interior sweep runs
// while the exchange messages are in flight.
func BenchmarkOverlapLatencyHiding(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		name := "executor=sync"
		if overlap {
			name = "executor=overlap"
		}
		b.Run(name, func(b *testing.B) {
			s, err := delayedSession(overlap, benchDelay)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Warm the plan's wire buffers and the receive pools.
			if _, err := s.Run(2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			rep, err := s.Run(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if overlap {
				b.ReportMetric(float64(rep.Exec.Idle.Nanoseconds())/float64(b.N), "idle-ns/op")
			}
		})
	}
}

// TestOverlapLatencyHidingVirtual is BenchmarkOverlapLatencyHiding's
// virtual-time twin, replacing the wall-clock ">5% win" test that had
// to be -short-gated on shared CI runners: the same 4-rank session
// runs on a simulated clock with a 5ms injected one-way delay and
// virtualized compute, so both executors measure exact, deterministic
// virtual durations and the whole test takes milliseconds of real
// time. The interior sweep (~6ms of virtual compute per iteration)
// more than covers the delay, so the overlapped executor must beat the
// synchronous one by well over 5% and hide the exchange entirely
// (zero idle).
func TestOverlapLatencyHidingVirtual(t *testing.T) {
	const iters = 30
	run := func(overlap bool) *session.RunReport {
		g, err := mesh.Honeycomb(60, 100)
		if err != nil {
			t.Fatal(err)
		}
		s, err := session.New(context.Background(), g, session.Config{
			Procs:       4,
			Model:       &comm.Model{Delay: benchDelay},
			Clock:       vtime.NewSim(),
			OrderName:   "rcb",
			ComputeCost: 4 * time.Microsecond,
			Overlap:     overlap,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(2); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	wall := time.Now()
	sync := run(false)
	ov := run(true)
	t.Logf("virtual: sync %v, overlap %v (idle %v over %d split ops) in %v real",
		sync.Wall, ov.Wall, ov.Exec.Idle, ov.Exec.Overlapped, time.Since(wall))
	if ov.Exec.Overlapped == 0 {
		t.Fatal("overlapped run recorded no split-phase ops")
	}
	if sync.Exec.Overlapped != 0 {
		t.Fatal("synchronous run recorded split-phase ops")
	}
	if ov.Wall > sync.Wall-sync.Wall/20 {
		t.Errorf("overlapped run took %v virtual, synchronous %v; overlap should beat synchronous by >5%% under a %v one-way delay",
			ov.Wall, sync.Wall, benchDelay)
	}
	// The interior sweep outlasts the delay, so the drain hides nearly
	// all of it — a little genuine idle remains because per-rank
	// compute imbalance lets iteration starts drift apart, so a fast
	// rank can finish its interior before a slow peer's message was
	// even sent. The synchronous executor is exposed to the delay on
	// every exchange; the overlapped one must hide at least 90% of that
	// exposure. Exact virtual quantities, so the bound cannot flake.
	exposure := time.Duration(iters) * benchDelay
	if ov.Exec.Idle > exposure/10 {
		t.Errorf("overlapped run idled %v of a %v delay exposure; the interior sweep should hide at least 90%%", ov.Exec.Idle, exposure)
	}
}

// BenchmarkSolverStep records the no-delay baseline of both executor
// modes, so the split-phase bookkeeping overhead itself stays visible
// in bench.json.
func BenchmarkSolverStep(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		name := fmt.Sprintf("executor=%s", map[bool]string{false: "sync", true: "overlap"}[overlap])
		b.Run(name, func(b *testing.B) {
			g, err := mesh.Honeycomb(40, 60)
			if err != nil {
				b.Fatal(err)
			}
			s, err := session.New(context.Background(), g, session.Config{
				Procs:     4,
				OrderName: "rcb",
				WorkRep:   8,
				Overlap:   overlap,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Run(2); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := s.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}
