package bench

import (
	"fmt"
	"math/rand"
	"time"

	"stance/internal/comm"
	"stance/internal/partition"
	"stance/internal/redist"
)

// table2Paper holds the paper's published remap costs (seconds) for
// workstation sets {1-3}, {1-4}, {1-5}, with and without MCR.
var table2Paper = map[int64]map[int][2]float64{
	512:     {3: {0.0037, 0.0042}, 4: {0.0041, 0.0043}, 5: {0.0045, 0.0047}},
	2048:    {3: {0.0047, 0.0052}, 4: {0.0044, 0.0056}, 5: {0.0054, 0.006}},
	16384:   {3: {0.026, 0.031}, 4: {0.0234, 0.0309}, 5: {0.0229, 0.0319}},
	131072:  {3: {0.2448, 0.2594}, 4: {0.1816, 0.2440}, 5: {0.184, 0.2584}},
	1048576: {3: {1.8417, 1.9646}, 4: {1.4691, 1.9444}, 5: {1.4294, 2.0691}},
}

// MeasureRemap times the redistribution of a float64 array of the
// given size between two random layouts over a modeled Ethernet,
// averaged over samples adaptations. withMCR selects the arrangement
// search; without it the old arrangement is kept.
func MeasureRemap(size int64, p, samples int, withMCR bool, netScale float64, seed int64) (time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	var total time.Duration
	for s := 0; s < samples; s++ {
		old, err := partition.NewBlock(size, randWeights(rng, p))
		if err != nil {
			return 0, err
		}
		newW := randWeights(rng, p)
		var newLayout *partition.Layout
		if withMCR {
			// The runtime's default arrangement search (MCR sweeps with
			// swap refinement to convergence).
			newLayout, err = redist.Iterated(old, newW, redist.OverlapCost, 0)
		} else {
			newLayout, err = partition.New(size, newW, old.Arrangement())
		}
		if err != nil {
			return 0, err
		}
		d, err := runRedistribution(old, newLayout, netScale)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(samples), nil
}

// runRedistribution executes the data movement for one remap on an
// in-process world with the scaled Ethernet model and returns the wall
// time (barrier to barrier).
func runRedistribution(old, newLayout *partition.Layout, netScale float64) (time.Duration, error) {
	p := old.P()
	ws, err := comm.NewWorld(p, comm.Ethernet(netScale))
	if err != nil {
		return 0, err
	}
	defer comm.CloseWorld(ws)
	var elapsed time.Duration
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rank := c.Rank()
		data := make([]float64, old.Size(rank))
		for i := range data {
			data[i] = float64(rank)*1e6 + float64(i)
		}
		plan, err := redist.NewPlan(old, newLayout, rank)
		if err != nil {
			return err
		}
		if err := c.Barrier(0x301); err != nil {
			return err
		}
		start := time.Now()
		newData := make([]float64, plan.New.Len())
		if err := plan.ApplyLocal(data, newData); err != nil {
			return err
		}
		for _, s := range plan.Sends {
			off := s.Global.Lo - plan.Old.Lo
			if err := c.Send(s.Peer, 0x302, comm.F64sToBytes(data[off:off+s.Global.Len()])); err != nil {
				return err
			}
		}
		for _, r := range plan.Recvs {
			payload, err := c.Recv(r.Peer, 0x302)
			if err != nil {
				return err
			}
			vals, err := comm.BytesToF64s(payload)
			if err != nil {
				return err
			}
			copy(newData[r.Global.Lo-plan.New.Lo:], vals)
		}
		if err := c.Barrier(0x303); err != nil {
			return err
		}
		if rank == 0 {
			elapsed = time.Since(start)
		}
		// Verify the moved data: every element must carry its source
		// value, i.e. the global id is preserved end to end.
		for i, v := range newData {
			g := plan.New.Lo + int64(i)
			srcProc, srcLocal, err := old.Locate(g)
			if err != nil {
				return err
			}
			want := float64(srcProc)*1e6 + float64(srcLocal)
			if v != want {
				return fmt.Errorf("bench: element %d corrupted after remap (%v != %v)", g, v, want)
			}
		}
		return nil
	})
	return elapsed, err
}

// Table2 reproduces "Average cost of data remapping": moving arrays of
// growing size between random partitions, with and without the MCR
// arrangement search. MCR must win every cell by moving less data.
func Table2(opts Options) (*Table, error) {
	sizes := []int64{512, 2048, 16384, 131072, 1048576}
	samplesFor := func(size int64) int {
		switch {
		case opts.Quick:
			return 5
		case size >= 1048576:
			return 2
		case size >= 131072:
			return 6
		default:
			return 20
		}
	}
	if opts.Quick {
		sizes = sizes[:3]
	}
	t := &Table{
		ID:    "Table 2",
		Title: "Average cost of data remapping (seconds)",
		Header: []string{
			"Data Size", "Workstations",
			"Paper MCR", "Paper no-MCR", "Measured MCR", "Measured no-MCR",
		},
		Notes: []string{
			fmt.Sprintf("random capability adaptations, Ethernet model x%g", opts.netScale()),
			"paper: 100 samples of float arrays on SUN4/Ethernet",
		},
	}
	for _, size := range sizes {
		samples := samplesFor(size)
		for _, p := range []int{3, 4, 5} {
			with, err := MeasureRemap(size, p, samples, true, opts.netScale(), opts.Seed)
			if err != nil {
				return nil, err
			}
			without, err := MeasureRemap(size, p, samples, false, opts.netScale(), opts.Seed)
			if err != nil {
				return nil, err
			}
			paper := table2Paper[size][p]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", size), fmt.Sprintf("1..%d", p),
				seconds(paper[0]), seconds(paper[1]),
				seconds(with.Seconds()), seconds(without.Seconds()),
			})
		}
	}
	return t, nil
}
