package bench

import (
	"math/rand"
	"strconv"
	"time"

	"stance/internal/partition"
	"stance/internal/redist"
)

// table1Paper holds the paper's published MCR execution times (SUN4).
var table1Paper = map[int]float64{3: 0.00033, 5: 0.00049, 10: 0.0025, 15: 0.0074, 20: 0.017}

// MeasureMCR times one MinimizeCostRedistribution call averaged over
// samples random capability adaptations of p workstations.
func MeasureMCR(p, samples int, seed int64) (time.Duration, error) {
	rng := rand.New(rand.NewSource(seed))
	const n = 100000
	var total time.Duration
	for s := 0; s < samples; s++ {
		old, err := partition.NewBlock(n, randWeights(rng, p))
		if err != nil {
			return 0, err
		}
		newW := randWeights(rng, p)
		start := time.Now()
		if _, err := redist.MinimizeCostRedistribution(old, newW, redist.OverlapCost); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(samples), nil
}

// Table1 reproduces "Execution time of MinimizeCostRedistribution":
// the O(p^3) greedy arrangement search timed for growing processor
// counts.
func Table1(opts Options) (*Table, error) {
	samples := 100
	if opts.Quick {
		samples = 5
	}
	t := &Table{
		ID:     "Table 1",
		Title:  "Execution time of MinimizeCostRedistribution (seconds)",
		Header: []string{"Workstations", "Paper (SUN4)", "Measured"},
		Notes: []string{
			"mean over random capability adaptations; paper: 100 samples on SUN4/P4",
		},
	}
	for _, p := range []int{3, 5, 10, 15, 20} {
		d, err := MeasureMCR(p, samples, opts.Seed+int64(p))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(p), seconds(table1Paper[p]), seconds(d.Seconds()),
		})
	}
	return t, nil
}

func itoa(v int) string {
	return strconv.Itoa(v)
}

func randWeights(rng *rand.Rand, p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = rng.Float64() + 0.05
	}
	return w
}
