package bench

// Wire-transport benchmarks: the compiled exchange plan replayed over
// real loopback TCP sockets, and the tx batching win on small-section
// workloads. BenchmarkTcpExchange is the cross-transport comparison
// point for BenchmarkExchange (same mesh, same plan, sockets instead
// of channels); BenchmarkTcpExchangeBatched pins the gofast-style
// batching claim — many small tagged sections coalesced into single
// framed writes versus the one-write-per-message baseline
// (BatchBytes 1).

import (
	"context"
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
)

// newTCPExecHarness is newExecHarness over a TCP world: the same warm
// runtime/vector stack, with the socket mesh's wire buffers and the
// mailbox receive pool warmed by the same pre-rounds.
func newTCPExecHarness(b *testing.B, p int, opts comm.TransportOptions) *execHarness {
	b.Helper()
	g, err := mesh.Honeycomb(60, 100)
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.Open("tcp", p, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() })
	ws := w.Comms()
	h := &execHarness{ws: ws, rts: make([]*core.Runtime, p), vs: make([][]*core.Vector, p)}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		h.rts[c.Rank()] = rt
		v := rt.NewVector()
		v.SetByGlobal(func(gid int64) float64 { return float64(gid % 101) })
		h.vs[c.Rank()] = append(h.vs[c.Rank()], v)
		for i := 0; i < 4; i++ {
			if err := rt.Exchange(v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkTcpExchange measures the steady-state plan-replayed ghost
// gather over loopback TCP with default transport options — the number
// to hold against BenchmarkExchange's inproc figure.
func BenchmarkTcpExchange(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			h := newTCPExecHarness(b, p, comm.TransportOptions{})
			b.ReportAllocs()
			b.ResetTimer()
			err := comm.SPMD(h.ws, func(c *comm.Comm) error {
				rt, v := h.rts[c.Rank()], h.vs[c.Rank()][0]
				for i := 0; i < b.N; i++ {
					if err := rt.Exchange(v); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTcpExchangeBatched measures the tx batching win: one rank
// bursts many small tagged messages at a peer, the peer acks the
// burst. Under "batched" the writer coalesces the burst into a few
// framed writes; "write-per-msg" (BatchBytes 1) frames every message
// alone — the baseline batching must beat.
func BenchmarkTcpExchangeBatched(b *testing.B) {
	const (
		burst    = 64
		msgBytes = 16
	)
	modes := []struct {
		name string
		opts comm.TransportOptions
	}{
		{"batched", comm.TransportOptions{}},
		{"write-per-msg", comm.TransportOptions{BatchBytes: 1}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			w, err := comm.Open("tcp", 2, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { w.Close() })
			payload := make([]byte, msgBytes)
			b.SetBytes(burst * msgBytes)
			b.ResetTimer()
			err = w.SPMD(context.Background(), func(c *comm.Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < b.N; i++ {
						for j := 0; j < burst; j++ {
							if err := c.Send(1, 5, payload); err != nil {
								return err
							}
						}
						ack, err := c.Recv(1, 6)
						if err != nil {
							return err
						}
						c.Release(ack)
					}
				} else {
					for i := 0; i < b.N; i++ {
						for j := 0; j < burst; j++ {
							msg, err := c.Recv(0, 5)
							if err != nil {
								return err
							}
							c.Release(msg)
						}
						if err := c.Send(0, 6, nil); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
