package bench

import (
	"context"
	"runtime"
	"testing"
	"time"

	"stance/internal/ckpt"
	"stance/internal/mesh"
	"stance/internal/session"
	"stance/internal/vtime"
)

// TestCheckpointSteadyAlloc extends the allocation gate to
// checkpoint-enabled runs: with buddy checkpoints taken at every check
// boundary and heartbeat gates guarding each one, steady-state
// iterations between boundaries must stay as allocation-free as the
// plain replay path, and the boundaries themselves must reuse the
// store's persistent encode/mirror buffers rather than allocate per
// take. The bound is per-iteration averaged across the whole run —
// gates, takes and all — so either regression trips it.
func TestCheckpointSteadyAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector; CI runs this in a no-race step")
	}
	g, err := mesh.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := session.New(context.Background(), g, session.Config{
		Procs:       3,
		Clock:       vtime.NewSim(),
		OrderName:   "rcb",
		CheckEvery:  10,
		ComputeCost: time.Microsecond,
		Checkpoint:  &ckpt.Config{DetectTimeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(50); err != nil { // warm pools, plans, snapshot buffers
		t.Fatal(err)
	}
	const iters = 300
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := s.Run(iters); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	perIter := (m1.Mallocs - m0.Mallocs) / iters
	t.Logf("checkpointed steady state: %d allocs/iteration across 3 ranks", perIter)
	if perIter > 150 {
		t.Errorf("checkpointed steady state allocates %d objects/iteration; takes must reuse the store's persistent buffers", perIter)
	}
}
