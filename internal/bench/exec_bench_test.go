package bench

// Executor micro-benchmarks for the compiled exchange plan: the
// per-iteration schedule replay (Phase C) on a free inproc network, so
// the numbers are pure data-path overhead with no modeled wire time.
// The headline property is allocs/op: once the plan's wire buffers and
// the transport's receive pool are warm, the steady state is
// allocation-free (b.ReportAllocs shows 0 allocs/op at real benchtime;
// the constant SPMD setup cost amortizes away).

import (
	"fmt"
	"testing"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/mesh"
	"stance/internal/order"
)

// execHarness is a warm world/runtime/vector stack for executor
// benchmarks, built outside the timed region.
type execHarness struct {
	ws  []*comm.Comm
	rts []*core.Runtime
	vs  [][]*core.Vector
}

func newExecHarness(b *testing.B, p, nvecs int) *execHarness {
	b.Helper()
	g, err := mesh.Honeycomb(60, 100)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := comm.NewWorld(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { comm.CloseWorld(ws) })
	h := &execHarness{ws: ws, rts: make([]*core.Runtime, p), vs: make([][]*core.Vector, p)}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: order.RCB})
		if err != nil {
			return err
		}
		h.rts[c.Rank()] = rt
		for j := 0; j < nvecs; j++ {
			v := rt.NewVector()
			off := float64(j)
			v.SetByGlobal(func(gid int64) float64 { return float64(gid%101) + off })
			h.vs[c.Rank()] = append(h.vs[c.Rank()], v)
		}
		// Warm the plan's wire buffers and the transport's receive
		// pool so the timed region measures the steady state.
		for i := 0; i < 4; i++ {
			if err := rt.ExchangeAll(h.vs[c.Rank()]...); err != nil {
				return err
			}
			if err := rt.ScatterAddAll(h.vs[c.Rank()]...); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkExchange measures the steady-state ghost gather: pack from
// the vector into a persistent wire buffer, send, drain receives in
// arrival order, unpack straight into the ghost section.
func BenchmarkExchange(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			h := newExecHarness(b, p, 1)
			b.ReportAllocs()
			b.ResetTimer()
			err := comm.SPMD(h.ws, func(c *comm.Comm) error {
				rt, v := h.rts[c.Rank()], h.vs[c.Rank()][0]
				for i := 0; i < b.N; i++ {
					if err := rt.Exchange(v); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkScatterAdd measures the transpose: ghost contributions
// travel home and accumulate into owned elements in deterministic
// peer order.
func BenchmarkScatterAdd(b *testing.B) {
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			h := newExecHarness(b, p, 1)
			b.ReportAllocs()
			b.ResetTimer()
			err := comm.SPMD(h.ws, func(c *comm.Comm) error {
				rt, v := h.rts[c.Rank()], h.vs[c.Rank()][0]
				for i := 0; i < b.N; i++ {
					if err := rt.ScatterAdd(v); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkExchangeAll measures the coalesced gather: three vectors'
// segments share one message per peer.
func BenchmarkExchangeAll(b *testing.B) {
	const nvecs = 3
	for _, p := range []int{2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			h := newExecHarness(b, p, nvecs)
			b.ReportAllocs()
			b.ResetTimer()
			err := comm.SPMD(h.ws, func(c *comm.Comm) error {
				rt, vs := h.rts[c.Rank()], h.vs[c.Rank()]
				for i := 0; i < b.N; i++ {
					if err := rt.ExchangeAll(vs...); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
