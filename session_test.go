package stance_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"stance"
)

// TestSessionFacade drives the one-call API end to end the way the
// quickstart does: options in, report and result out.
func TestSessionFacade(t *testing.T) {
	g, err := stance.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stance.NewSession(context.Background(), g, 3,
		stance.WithOrdering("rcb"),
		stance.WithStrategy(stance.StrategySort2),
		stance.WithEnv(stance.LoadedEnv(3, 2.5)),
		stance.WithWorkRep(2),
		stance.WithCheckEvery(4),
		stance.WithBalancer(stance.BalancerConfig{Horizon: 50}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rep, err := s.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranks) != 3 || rep.Wall <= 0 {
		t.Errorf("report: %d ranks, wall %v", len(rep.Ranks), rep.Wall)
	}
	if len(rep.Remaps()) == 0 {
		t.Error("2.5x imbalance not rebalanced")
	}
	y, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != g.N {
		t.Errorf("gathered %d values for %d vertices", len(y), g.N)
	}
	byVertex, err := s.ResultByVertex()
	if err != nil {
		t.Fatal(err)
	}
	if len(byVertex) != g.N {
		t.Errorf("unpermuted %d values for %d vertices", len(byVertex), g.N)
	}
}

// TestSessionFacadeTCP runs a session over the TCP transport selected
// by name through the registry.
func TestSessionFacadeTCP(t *testing.T) {
	g, err := stance.Honeycomb(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stance.NewSession(context.Background(), g, 2,
		stance.WithTransport("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.World().Transport(); got != "tcp" {
		t.Errorf("Transport() = %q", got)
	}
	if _, err := s.Run(3); err != nil {
		t.Fatal(err)
	}
}

// TestSessionFacadeWeights exercises the remaining options: explicit
// capabilities, vertex weights and a custom order function.
func TestSessionFacadeWeights(t *testing.T) {
	g, err := stance.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	vw := make([]float64, g.N)
	for v := range vw {
		vw[v] = float64(g.Degree(v)) + 1
	}
	s, err := stance.NewSession(context.Background(), g, 2,
		stance.WithOrderFunc(stance.RCB),
		stance.WithWeights(1, 3),
		stance.WithVertexWeights(vw),
		stance.WithRemapPolicy(stance.RemapMCR),
		stance.WithNetworkModel(stance.Ethernet(0.01)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	// A 1:3 capability split must give rank 1 roughly three times the
	// items of rank 0 under degree weighting.
	n0 := s.Runtime(0).LocalN()
	n1 := s.Runtime(1).LocalN()
	if n0 >= n1 {
		t.Errorf("weights 1:3 gave rank 0 %d items, rank 1 %d", n0, n1)
	}
}

// TestSessionFacadeGroups drives a two-level world through the
// options: the run must count slow-link traffic, and an hierarchy-aware
// run must put fewer bytes on the slow link than its flat-cut control
// arm while producing bit-identical numerics.
func TestSessionFacadeGroups(t *testing.T) {
	g, err := stance.Honeycomb(20, 30)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...stance.Option) (*stance.RunReport, []float64) {
		t.Helper()
		base := []stance.Option{
			stance.WithOrdering("rcb"),
			stance.WithClock(stance.NewSimClock()),
			stance.WithVirtualCompute(time.Microsecond),
			stance.WithNetworkModel(stance.Ethernet(0.1)),
			stance.WithGroups(2),
			stance.WithInterModel(stance.Ethernet(1)),
		}
		s, err := stance.NewSession(context.Background(), g, 4, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rep, err := s.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		y, err := s.ResultByVertex()
		if err != nil {
			t.Fatal(err)
		}
		return rep, y
	}
	hier, yh := run()
	flat, yf := run(stance.WithFlatCut())
	if hier.InterMsgs <= 0 || hier.InterBytes <= 0 {
		t.Errorf("hierarchical run counted no slow-link traffic: %d msgs, %d bytes",
			hier.InterMsgs, hier.InterBytes)
	}
	if hier.InterBytes > flat.InterBytes {
		t.Errorf("hierarchy-aware cut put %d bytes on the slow link, flat cut %d",
			hier.InterBytes, flat.InterBytes)
	}
	for v := range yh {
		if yh[v] != yf[v] {
			t.Fatalf("vertex %d: hier %v != flat %v — the cut changed the numerics", v, yh[v], yf[v])
		}
	}

	// An explicit topology through NewTopology must work too, and a
	// conflicting WithGroups+WithTopology must fail loudly.
	topo, err := stance.NewTopology([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := stance.NewSession(context.Background(), g, 4, stance.WithTopology(topo))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := stance.NewSession(context.Background(), g, 4,
		stance.WithTopology(topo), stance.WithGroups(2)); err == nil {
		t.Error("WithTopology + WithGroups accepted; want a loud conflict")
	}
}

// TestOpenWorldFacade checks the World layer through the facade.
func TestOpenWorldFacade(t *testing.T) {
	w, err := stance.OpenWorld("inproc", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err = w.SPMD(ctx, func(c *stance.Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(1, 3) // no sender: must unblock on cancel
			return err
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SPMD = %v, want context.Canceled", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	found := false
	for _, name := range stance.Transports() {
		if name == "tcp" {
			found = true
		}
	}
	if !found {
		t.Errorf("Transports() = %v, want tcp listed", stance.Transports())
	}
}
