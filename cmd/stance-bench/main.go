// Command stance-bench regenerates the paper's evaluation tables
// (Section 5, Tables 1-5) on the simulated cluster, plus the
// hierarchical twins (Tables H1 and H2): the same loop and balance
// protocol on a two-level cluster of node groups over a slower
// inter-group link. Each table prints the paper's published numbers
// next to the measured ones; see EXPERIMENTS.md for the recorded
// comparison.
//
// Usage:
//
//	stance-bench [-table all|1|2|3|4|5|hier|h1|h2] [-quick] [-netscale F] [-seed N] [-groups G]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"stance/internal/bench"
	"stance/internal/comm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stance-bench: ")
	table := flag.String("table", "all", "which table to regenerate (all, 1, 2, 3, 4, 5, hier, h1, h2)")
	quick := flag.Bool("quick", false, "reduced sizes and sample counts")
	netScale := flag.Float64("netscale", 1, "Ethernet model scale (1 = the paper's 10 Mbit shared Ethernet)")
	seed := flag.Int64("seed", 1, "workload seed")
	overlap := flag.Bool("overlap", false, "run the solver tables on the split-phase overlapped executor (Phase C′)")
	pipeline := flag.Int("pipeline", 0, "run the solver tables on the software-pipelined executor at this depth (0 = off); conflicts with -overlap")
	fields := flag.Int("fields", 1, "independent solution fields per iteration (>=2 lets -pipeline fly several exchanges at once)")
	virtual := flag.Bool("virtual", false, "run the solver tables (4, 5) on the simulated clock: exact, deterministic virtual durations in milliseconds of real time")
	cost := flag.Duration("cost", time.Microsecond, "virtual compute cost per element per work repetition (with -virtual)")
	transport := flag.String("transport", "", "comm transport for the solver tables (default inproc)")
	groups := flag.Int("groups", 0, "node-group count for the hierarchical twins (h1, h2); 0 = the default 2 groups")
	flushPeriod := flag.Duration("flush", 0, "tcp tx batching linger (0 = flush immediately)")
	batchBytes := flag.Int("batch", 0, "tcp tx batch cap in bytes (0 = transport default)")
	compress := flag.String("compress", "", "tcp per-batch compression codec: none, flate or gzip")
	flag.Parse()

	if *pipeline > 0 && *overlap {
		log.Fatal("-overlap and -pipeline are mutually exclusive: the pipelined executor subsumes the interior/boundary overlap; drop one")
	}
	opts := bench.Options{
		Quick: *quick, NetScale: *netScale, Seed: *seed,
		Overlap: *overlap, Pipeline: *pipeline, Fields: *fields,
		Transport: *transport, Groups: *groups,
	}
	if *flushPeriod > 0 || *batchBytes > 0 || *compress != "" {
		opts.Tuning = &comm.TransportOptions{
			FlushPeriod: *flushPeriod,
			BatchBytes:  *batchBytes,
			Compression: *compress,
		}
		if err := opts.Tuning.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	if *virtual {
		if *transport != "" && *transport != "inproc" {
			log.Fatalf("-virtual requires the inproc transport (real %s sockets deliver on the wall clock, which a simulated clock cannot see)", *transport)
		}
		opts = opts.Virtual(*cost)
	}
	gens := map[string]func(bench.Options) (*bench.Table, error){
		"1": bench.Table1, "2": bench.Table2, "3": bench.Table3,
		"4": bench.Table4, "5": bench.Table5,
		"h1": bench.TableHierStatic, "h2": bench.TableHierChecks,
	}
	var order []string
	switch *table {
	case "all":
		order = []string{"1", "2", "3", "4", "5", "h1", "h2"}
	case "hier":
		order = []string{"h1", "h2"}
	default:
		if _, ok := gens[*table]; !ok {
			log.Fatalf("unknown table %q (want all, 1..5, hier, h1, h2)", *table)
		}
		order = []string{*table}
	}
	for _, id := range order {
		start := time.Now()
		t, err := gens[id](opts)
		if err != nil {
			log.Fatalf("table %s: %v", id, err)
		}
		fmt.Println(t.String())
		fmt.Fprintf(os.Stderr, "  (table %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
