// Command meshgen generates the unstructured meshes the experiments
// run on, reports their statistics, and compares the quality of the
// locality orderings on them (paper Section 3.1).
//
// Examples:
//
//	meshgen -mesh paper -stats
//	meshgen -mesh grid:50x50 -o mesh.txt
//	meshgen -mesh honeycomb:80x100 -orderings -parts 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"stance/internal/mesh"
	"stance/internal/meshspec"
	"stance/internal/order"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshgen: ")
	spec := flag.String("mesh", "paper", "mesh: "+meshspec.Names())
	out := flag.String("o", "", "write the mesh to this file (stance-mesh text format)")
	stats := flag.Bool("stats", true, "print mesh statistics")
	orderings := flag.Bool("orderings", false, "compare locality orderings on this mesh")
	parts := flag.Int("parts", 8, "number of equal blocks for the ordering-quality report")
	flag.Parse()

	g, err := meshspec.Build(*spec)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		s := mesh.Describe(g)
		fmt.Printf("mesh %s: %d vertices, %d edges, degree %d..%d (avg %.2f), connected=%v\n",
			*spec, s.Vertices, s.Edges, s.MinDegree, s.MaxDegree, s.AvgDegree, s.Connected)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := mesh.Write(f, g); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *orderings {
		fmt.Printf("\nordering quality for %d equal blocks (lower is better):\n", *parts)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ordering\tedge cut\tbandwidth\tmean edge span")
		for _, name := range order.Names() {
			f, err := order.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			perm, err := f(g)
			if err != nil {
				fmt.Fprintf(w, "%s\t(%v)\t\t\n", name, err)
				continue
			}
			q, err := order.Evaluate(g, perm, *parts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\n", name, q.EdgeCut, q.Bandwidth, q.MeanEdgeSpan)
		}
		w.Flush()
	}
}
