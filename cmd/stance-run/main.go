// Command stance-run executes the paper's iterative irregular loop on
// a simulated (or TCP-connected) cluster with arbitrary mesh, ordering,
// heterogeneity and load-balancing settings — the workbench the
// examples and tables are special cases of.
//
// Examples:
//
//	stance-run -p 4 -iters 50 -mesh honeycomb:60x80 -order rcb
//	stance-run -p 3 -load 0:3 -lb -check-every 10
//	stance-run -p 2 -tcp -mesh grid:40x40
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/metrics"
	"stance/internal/redist"
	"stance/internal/solver"

	"stance/internal/mesh"
	"stance/internal/meshspec"
	"stance/internal/order"
)

type loadFlags []hetero.Load

func (l *loadFlags) String() string { return fmt.Sprint(*l) }

// Set parses "rank:factor[:fromIter[:untilIter]]".
func (l *loadFlags) Set(s string) error {
	var ld hetero.Load
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return fmt.Errorf("load %q: want rank:factor[:from[:until]]", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%d", &ld.Rank); err != nil {
		return fmt.Errorf("load rank %q: %v", parts[0], err)
	}
	if _, err := fmt.Sscanf(parts[1], "%g", &ld.Factor); err != nil {
		return fmt.Errorf("load factor %q: %v", parts[1], err)
	}
	if len(parts) > 2 {
		if _, err := fmt.Sscanf(parts[2], "%d", &ld.FromIter); err != nil {
			return fmt.Errorf("load from %q: %v", parts[2], err)
		}
	}
	if len(parts) > 3 {
		if _, err := fmt.Sscanf(parts[3], "%d", &ld.UntilIter); err != nil {
			return fmt.Errorf("load until %q: %v", parts[3], err)
		}
	}
	*l = append(*l, ld)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stance-run: ")
	p := flag.Int("p", 4, "number of workstations")
	iters := flag.Int("iters", 50, "iterations of the parallel loop")
	workRep := flag.Int("work", 200, "kernel work amplification per element")
	meshSpec := flag.String("mesh", "honeycomb:60x80", "mesh: "+meshspec.Names())
	ordName := flag.String("order", "rcb", "locality ordering: "+strings.Join(order.Names(), ", "))
	strategy := flag.String("strategy", "sort2", "inspector strategy: sort1, sort2, simple")
	lb := flag.Bool("lb", false, "enable adaptive load balancing")
	checkEvery := flag.Int("check-every", 10, "iterations between load-balance checks")
	netScale := flag.Float64("netscale", 0.1, "Ethernet model scale (in-process transport only)")
	tcp := flag.Bool("tcp", false, "connect ranks over loopback TCP instead of in-process channels")
	weighted := flag.Bool("weighted", false, "balance vertex weight (degree) instead of vertex counts")
	decentralized := flag.Bool("decentralized", false, "decide load balancing on every rank (no controller)")
	ewma := flag.Float64("ewma", 0, "EWMA smoothing for rate estimates (0 = paper's last-window)")
	var loads loadFlags
	flag.Var(&loads, "load", "competing load rank:factor[:from[:until]] (repeatable)")
	flag.Parse()

	g, err := meshspec.Build(*meshSpec)
	if err != nil {
		log.Fatal(err)
	}
	ord, err := order.ByName(*ordName)
	if err != nil {
		log.Fatal(err)
	}
	var strat core.Strategy
	switch *strategy {
	case "sort1":
		strat = core.StrategySort1
	case "sort2":
		strat = core.StrategySort2
	case "simple":
		strat = core.StrategySimple
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	env := hetero.Uniform(*p)
	env.Loads = append(env.Loads, loads...)
	if err := env.Validate(); err != nil {
		log.Fatal(err)
	}

	var ws []*comm.Comm
	if *tcp {
		var closer func() error
		ws, closer, err = comm.NewTCPWorld(*p)
		if err != nil {
			log.Fatal(err)
		}
		defer closer()
	} else {
		ws, err = comm.NewWorld(*p, comm.Ethernet(*netScale))
		if err != nil {
			log.Fatal(err)
		}
		defer comm.CloseWorld(ws)
	}

	st := mesh.Describe(g)
	fmt.Printf("mesh: %d vertices, %d edges (degree %d..%d), order %s, %d workstations, transport %s\n",
		st.Vertices, st.Edges, st.MinDegree, st.MaxDegree, *ordName, *p, transportName(*tcp))
	if len(loads) > 0 {
		fmt.Printf("competing loads: %v\n", []hetero.Load(loads))
	}

	var wall time.Duration
	totals := make([]solver.Timings, *p)
	accumulate := func(rank int, tm solver.Timings) {
		totals[rank].Compute += tm.Compute
		totals[rank].Comm += tm.Comm
		totals[rank].Items += tm.Items
	}
	checks, remaps := 0, 0
	var vertexWeights []float64
	if *weighted {
		vertexWeights = make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			vertexWeights[v] = float64(g.Degree(v)) + 1
		}
	}
	err = comm.SPMD(ws, func(c *comm.Comm) error {
		rt, err := core.New(c, g, core.Config{Order: ord, Strategy: strat, VertexWeights: vertexWeights})
		if err != nil {
			return err
		}
		s, err := solver.New(rt, env, *workRep)
		if err != nil {
			return err
		}
		var bal *loadbal.Balancer
		if *lb {
			var est *loadbal.Estimator
			if *ewma > 0 {
				est, err = loadbal.NewEstimator(loadbal.EstimateEWMA, *ewma)
				if err != nil {
					return err
				}
			}
			bal, err = loadbal.New(rt, loadbal.Config{
				Horizon:       *checkEvery,
				CostModel:     redist.CostModel{PerMessage: 1e-3 * *netScale, PerByte: *netScale / 1.25e6},
				Estimator:     est,
				Decentralized: *decentralized,
			})
			if err != nil {
				return err
			}
		}
		if err := c.Barrier(1); err != nil {
			return err
		}
		start := time.Now()
		err = s.Run(*iters, func(iter int) error {
			if bal == nil || iter%*checkEvery != 0 || iter == *iters {
				return nil
			}
			tm := s.TakeTimings()
			accumulate(c.Rank(), tm)
			d, err := bal.Check(loadbal.Report{RatePerItem: tm.RatePerItem(), Items: tm.Items})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				checks++
				if d.Remapped {
					remaps++
					fmt.Printf("  iter %d: remapped (predicted %.4fs -> %.4fs per phase, cost %.4fs)\n",
						iter, d.PredictedCurrent, d.PredictedNew, d.EstimatedRemapCost)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := c.Barrier(2); err != nil {
			return err
		}
		if c.Rank() == 0 {
			wall = time.Since(start)
		}
		accumulate(c.Rank(), s.TakeTimings())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d iterations in %v (%.2f ms/iter)\n", *iters, wall.Round(time.Millisecond),
		wall.Seconds()*1e3/float64(*iters))
	fmt.Println("rank  compute     comm        items")
	for r, tm := range totals {
		fmt.Printf("%4d  %-10v  %-10v  %d\n", r, tm.Compute.Round(time.Microsecond),
			tm.Comm.Round(time.Microsecond), tm.Items)
	}
	if *p > 1 {
		// Section 4 efficiency from measured rates: a rank computing
		// rate seconds/item alone would need rate * meshSize * iters
		// for the whole run.
		seq := make([]float64, 0, *p)
		usable := true
		for _, tm := range totals {
			if tm.Items == 0 {
				usable = false
				break
			}
			seq = append(seq, tm.RatePerItem()*float64(st.Vertices)*float64(*iters))
		}
		if usable {
			if e, err := metrics.EfficiencyStatic(wall.Seconds(), seq); err == nil {
				fmt.Printf("efficiency (Section 4 definition, measured rates): %.2f\n", e)
			}
		}
	}
	if *lb {
		fmt.Printf("load-balance checks: %d, remaps: %d\n", checks, remaps)
	}
}

func transportName(tcp bool) string {
	if tcp {
		return "tcp"
	}
	return "in-process"
}
