// Command stance-run executes the paper's iterative irregular loop on
// a simulated (or TCP-connected) cluster with arbitrary mesh, ordering,
// heterogeneity and load-balancing settings — the workbench the
// examples and tables are special cases of. It is a thin shell over
// the session API: every run is one NewSession + Run.
//
// Examples:
//
//	stance-run -p 4 -iters 50 -mesh honeycomb:60x80 -order rcb
//	stance-run -p 3 -load 0:3 -lb -check-every 10
//	stance-run -p 2 -transport tcp -mesh grid:40x40
//	stance-run -scenario cluster.json -iters 100 -lb
//
// A scenario file describes the whole simulated cluster as JSON —
// per-workstation speeds, competing loads and availability outages
// (which enable elastic membership):
//
//	{"speeds": [1, 1, 0.5, 1],
//	 "loads": [{"rank": 1, "factor": 3, "fromIter": 20}],
//	 "outages": [{"rank": 2, "fromIter": 30, "untilIter": 70}]}
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/meshspec"
	"stance/internal/order"
	"stance/internal/redist"
	"stance/internal/session"
	"stance/internal/solver"
	"stance/internal/vtime"
)

type killFlags []ckpt.Kill

func (k *killFlags) String() string { return fmt.Sprint(*k) }

// Set parses "rank:iter".
func (k *killFlags) Set(s string) error {
	var kl ckpt.Kill
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return fmt.Errorf("kill %q: want rank:iter", s)
	}
	var err error
	if kl.Rank, err = strconv.Atoi(parts[0]); err != nil {
		return fmt.Errorf("kill rank %q: %v", parts[0], err)
	}
	if kl.Iter, err = strconv.Atoi(parts[1]); err != nil {
		return fmt.Errorf("kill iter %q: %v", parts[1], err)
	}
	*k = append(*k, kl)
	return nil
}

type loadFlags []hetero.Load

func (l *loadFlags) String() string { return fmt.Sprint(*l) }

// Set parses "rank:factor[:fromIter[:untilIter]]". strconv rejects
// trailing garbage ("3junk"), unlike fmt.Sscanf.
func (l *loadFlags) Set(s string) error {
	var ld hetero.Load
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return fmt.Errorf("load %q: want rank:factor[:from[:until]]", s)
	}
	var err error
	if ld.Rank, err = strconv.Atoi(parts[0]); err != nil {
		return fmt.Errorf("load rank %q: %v", parts[0], err)
	}
	if ld.Factor, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return fmt.Errorf("load factor %q: %v", parts[1], err)
	}
	if len(parts) > 2 {
		if ld.FromIter, err = strconv.Atoi(parts[2]); err != nil {
			return fmt.Errorf("load from %q: %v", parts[2], err)
		}
	}
	if len(parts) > 3 {
		if ld.UntilIter, err = strconv.Atoi(parts[3]); err != nil {
			return fmt.Errorf("load until %q: %v", parts[3], err)
		}
	}
	*l = append(*l, ld)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stance-run: ")
	p := flag.Int("p", 4, "number of workstations")
	iters := flag.Int("iters", 50, "iterations of the parallel loop")
	workRep := flag.Int("work", 200, "kernel work amplification per element")
	meshSpec := flag.String("mesh", "honeycomb:60x80", "mesh: "+meshspec.Names())
	ordName := flag.String("order", "rcb", "locality ordering: "+strings.Join(order.Names(), ", "))
	strategy := flag.String("strategy", "sort2", "inspector strategy: sort1, sort2, simple")
	lb := flag.Bool("lb", false, "enable adaptive load balancing")
	overlap := flag.Bool("overlap", false, "split-phase overlapped executor (interior/boundary pipelining); requires a kernel with a boundary split")
	pipeline := flag.Int("pipeline", 0, "software-pipelined executor depth (0 = off, 1 = within-iteration, >=2 = across iterations); keeps every field's exchange in flight on its own op handle; requires a kernel with a boundary split, conflicts with -overlap")
	fields := flag.Int("fields", 1, "independent solution fields the solver advances per iteration (>=2 lets -pipeline fly several exchanges at once)")
	kernelName := flag.String("kernel", "figure8", "solver compute body: "+solver.KernelNames())
	checkEvery := flag.Int("check-every", 10, "iterations between load-balance checks")
	netScale := flag.Float64("netscale", 0.1, "Ethernet model scale (in-process transport only)")
	groups := flag.Int("groups", 0, "node-group count for a two-level cluster: ranks split into this many groups over a slower inter-group link (0 = flat); enables the hierarchy-aware cut and leader-aggregated balance checks")
	interScale := flag.Float64("interscale", 10, "inter-group link slowdown relative to -netscale (with -groups)")
	flatCut := flag.Bool("flat-cut", false, "keep the two-level pricing but cut the partition flat (the control arm; with -groups)")
	transport := flag.String("transport", "inproc", "comm transport: "+strings.Join(comm.Transports(), ", "))
	tcp := flag.Bool("tcp", false, "shorthand for -transport tcp")
	weighted := flag.Bool("weighted", false, "balance vertex weight (degree) instead of vertex counts")
	decentralized := flag.Bool("decentralized", false, "decide load balancing on every rank (no controller)")
	ewma := flag.Float64("ewma", 0, "EWMA smoothing for rate estimates (0 = paper's last-window)")
	scenario := flag.String("scenario", "", "JSON file with the full simulated environment (speeds, loads, outages, traces); conflicts with -load and fixes -p")
	virtual := flag.Bool("virtual", false, "run on the simulated clock: deterministic virtual time, instant wall time (inproc transport only)")
	cost := flag.Duration("cost", 10*time.Microsecond, "virtual compute cost per element per work repetition (with -virtual)")
	ckptTimeout := flag.Duration("ckpt", 0, "enable crash-stop fault tolerance with this failure-detection timeout (0 = off); ranks buddy-checkpoint at every check boundary and survivors restart from the last checkpoint when a rank dies")
	flushPeriod := flag.Duration("flush", 0, "tcp tx batching linger: wait up to this long coalescing sections into one framed write (0 = flush immediately)")
	batchBytes := flag.Int("batch", 0, "tcp tx batch cap in bytes before a forced flush (0 = transport default)")
	compress := flag.String("compress", "", "tcp per-batch compression codec: none, flate or gzip")
	hbInterval := flag.Duration("hb", 0, "tcp heartbeat interval for transport-level liveness (0 = heartbeats off)")
	hbMiss := flag.Int("hb-miss", 0, "consecutive missed tcp heartbeats before a peer is declared dead (0 = transport default)")
	var loads loadFlags
	flag.Var(&loads, "load", "competing load rank:factor[:from[:until]] (repeatable)")
	var kills killFlags
	flag.Var(&kills, "kill", "inject a crash rank:iter — the rank goes permanently silent at that iteration's checkpoint gate (repeatable, requires -ckpt)")
	flag.Parse()
	explicitFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitFlags[f.Name] = true })
	if *tcp {
		if explicitFlags["transport"] && *transport != "tcp" {
			log.Fatalf("-tcp conflicts with -transport %s", *transport)
		}
		*transport = "tcp"
	}
	if *virtual && *transport != "inproc" {
		// The session would reject this too, but name the flags.
		log.Fatalf("-virtual requires the inproc transport (real %s sockets deliver on the wall clock, which a simulated clock cannot see)", *transport)
	}
	if !*virtual && explicitFlags["cost"] {
		log.Fatalf("-cost only applies with -virtual")
	}
	if len(kills) > 0 && *ckptTimeout <= 0 {
		log.Fatalf("-kill requires -ckpt: without checkpoints a killed rank is just a hang")
	}
	if *groups == 0 && (explicitFlags["interscale"] || *flatCut) {
		log.Fatalf("-interscale and -flat-cut only apply with -groups")
	}

	// A scenario file owns the whole environment description: flags
	// that would edit it piecemeal conflict rather than silently merge.
	var env *hetero.Env
	if *scenario != "" {
		if len(loads) > 0 {
			log.Fatalf("-scenario conflicts with -load: put the competing loads in %s", *scenario)
		}
		data, err := os.ReadFile(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		env, err = hetero.FromJSON(data)
		if err != nil {
			log.Fatalf("%s: %v", *scenario, err)
		}
		if explicitFlags["p"] && *p != env.P() {
			log.Fatalf("-p %d conflicts with -scenario %s, which describes %d workstations", *p, *scenario, env.P())
		}
		*p = env.P()
	} else {
		env = hetero.Uniform(*p)
		env.Loads = append(env.Loads, loads...)
	}

	// Ctrl-C cancels the session context: every blocked receive
	// unwinds with context.Canceled instead of the run deadlocking.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, err := meshspec.Build(*meshSpec)
	if err != nil {
		log.Fatal(err)
	}
	// Every transport receives the model; ones that run over real
	// sockets (tcp) ignore it.
	kern, err := solver.KernelByName(*kernelName)
	if err != nil {
		log.Fatal(err)
	}
	if *overlap {
		// Overlapped mode needs the kernel cut at the interior/boundary
		// line. Refuse up front with an actionable message — silently
		// falling back to the synchronous executor would misreport every
		// measurement taken from this run.
		if _, ok := kern.(solver.SubsetKernel); !ok {
			log.Fatalf("-overlap requires a kernel with a boundary split, but kernel %q has none; "+
				"drop -overlap or use -kernel figure8", *kernelName)
		}
	}
	if *pipeline > 0 {
		if *overlap {
			log.Fatalf("-overlap and -pipeline are mutually exclusive: the pipelined executor subsumes the interior/boundary overlap; drop one")
		}
		// Same contract as -overlap: pipelining restarts exchanges behind
		// the interior sweep, so the kernel must expose the split.
		if _, ok := kern.(solver.SubsetKernel); !ok {
			log.Fatalf("-pipeline requires a kernel with a boundary split, but kernel %q has none; "+
				"drop -pipeline or use -kernel figure8", *kernelName)
		}
	}
	cfg := session.Config{
		Procs:      *p,
		Transport:  *transport,
		Model:      comm.Ethernet(*netScale),
		OrderName:  *ordName,
		WorkRep:    *workRep,
		CheckEvery: *checkEvery,
		Kernel:     kern,
		Overlap:    *overlap,
		Pipeline:   *pipeline,
		Fields:     *fields,
	}
	if *virtual {
		// The simulated clock: the run's timings become exact virtual
		// durations, the wall time collapses to milliseconds, and the
		// same invocation reproduces the same report byte for byte.
		cfg.Clock = vtime.NewSim()
		cfg.ComputeCost = *cost
	}
	if *groups > 0 {
		topo, err := comm.ContiguousGroups(*p, *groups)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Topology = topo
		cfg.InterModel = comm.Ethernet(*netScale * *interScale)
		cfg.FlatCut = *flatCut
	}
	if *ckptTimeout > 0 {
		cfg.Checkpoint = &ckpt.Config{DetectTimeout: *ckptTimeout, Kills: kills}
	}
	if *flushPeriod > 0 || *batchBytes > 0 || *compress != "" || *hbInterval > 0 || *hbMiss > 0 {
		cfg.Tuning = &comm.TransportOptions{
			FlushPeriod:       *flushPeriod,
			BatchBytes:        *batchBytes,
			Compression:       *compress,
			HeartbeatInterval: *hbInterval,
			HeartbeatMiss:     *hbMiss,
		}
		if err := cfg.Tuning.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	switch *strategy {
	case "sort1":
		cfg.Strategy = core.StrategySort1
	case "sort2":
		cfg.Strategy = core.StrategySort2
	case "simple":
		cfg.Strategy = core.StrategySimple
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	cfg.Env = env
	if env.Elastic() {
		// Narrate membership transitions live, like remaps.
		cfg.OnMembership = func(ev session.MembershipEvent) {
			fmt.Printf("  iter %d: epoch %d, active %v (retired %v, admitted %v, moved %d bytes)\n",
				ev.Iter, ev.Epoch, ev.Active, ev.Retired, ev.Admitted, ev.MovedBytes)
		}
	}
	if *weighted {
		vw := make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			vw[v] = float64(g.Degree(v)) + 1
		}
		cfg.VertexWeights = vw
	}
	if *lb {
		// Horizon is left zero: the session defaults it to the check
		// interval.
		bal := loadbal.Config{
			CostModel:     redist.CostModel{PerMessage: 1e-3 * *netScale, PerByte: *netScale / 1.25e6},
			Decentralized: *decentralized,
		}
		if *ewma > 0 {
			est, err := loadbal.NewEstimator(loadbal.EstimateEWMA, *ewma)
			if err != nil {
				log.Fatal(err)
			}
			bal.Estimator = est
		}
		cfg.Balancer = &bal
		// Print remaps live, so long runs show balancing as it happens.
		cfg.OnCheck = func(ev session.CheckEvent) {
			if d := ev.Decision; d.Remapped {
				fmt.Printf("  iter %d: remapped (predicted %.4fs -> %.4fs per phase, cost %.4fs)\n",
					ev.Iter, d.PredictedCurrent, d.PredictedNew, d.EstimatedRemapCost)
			}
		}
	}

	st := mesh.Describe(g)
	fmt.Printf("mesh: %d vertices, %d edges (degree %d..%d), order %s, %d workstations, transport %s\n",
		st.Vertices, st.Edges, st.MinDegree, st.MaxDegree, *ordName, *p, *transport)
	if len(env.Loads) > 0 {
		fmt.Printf("competing loads: %v\n", env.Loads)
	}
	if len(env.Outages) > 0 {
		fmt.Printf("availability outages: %v (elastic membership enabled)\n", env.Outages)
		// Membership is evaluated at check boundaries, so an outage
		// shorter than the check interval can pass entirely unnoticed.
		for _, o := range env.Outages {
			if o.UntilIter > 0 && o.UntilIter-o.FromIter < *checkEvery {
				fmt.Printf("  warning: outage %v spans %d iterations, shorter than -check-every %d; "+
					"it may fall between membership boundaries and be ignored\n",
					o, o.UntilIter-o.FromIter, *checkEvery)
			}
		}
	}

	s, err := session.New(ctx, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Run(*iters)
	if err != nil {
		log.Fatal(err)
	}

	unit := ""
	if *virtual {
		unit = " virtual"
	}
	fmt.Printf("\n%d iterations in %v%s (%.2f ms/iter)\n", *iters, rep.Wall.Round(time.Millisecond),
		unit, rep.Wall.Seconds()*1e3/float64(*iters))
	fmt.Printf("messages: %d (%d payload bytes)\n", rep.Msgs, rep.Bytes)
	if *groups > 0 {
		fmt.Printf("inter-group (slow link): %d msgs, %d bytes\n", rep.InterMsgs, rep.InterBytes)
	}
	if t := rep.Transport; t != nil && t.NFlushes > 0 {
		fmt.Printf("wire: %d msgs in %d flushes (%.1f msgs/write), %d tx / %d rx bytes, %d hb misses, %d backpressure stalls\n",
			t.NTx, t.NFlushes, float64(t.NTx)/float64(t.NFlushes), t.NTxByte, t.NRxByte, t.NDroppedHB, t.NTxBackpressure)
	}
	if *overlap {
		fmt.Printf("overlapped executor: %d split-phase ops, %v un-hidden exchange idle\n",
			rep.Exec.Overlapped, rep.Exec.Idle.Round(time.Microsecond))
	}
	if *pipeline > 0 {
		fmt.Printf("pipelined executor (depth %d, %d fields): %d split-phase ops, %d issued with another in flight, %v un-hidden exchange idle\n",
			*pipeline, *fields, rep.Exec.Overlapped, rep.Exec.Pipelined, rep.Exec.Idle.Round(time.Microsecond))
	}
	fmt.Println("rank  compute     comm        items")
	for r, u := range rep.Ranks {
		fmt.Printf("%4d  %-10v  %-10v  %d\n", r, u.Compute.Round(time.Microsecond),
			u.Comm.Round(time.Microsecond), u.Items)
	}
	if *p > 1 {
		// Section 4 efficiency from measured rates: a rank computing
		// rate seconds/item alone would need rate * meshSize * iters
		// for the whole run.
		if e, err := rep.Efficiency(st.Vertices); err == nil {
			fmt.Printf("efficiency (Section 4 definition, measured rates): %.2f\n", e)
		}
	}
	if *lb {
		fmt.Printf("load-balance checks: %d, remaps: %d\n", len(rep.Checks), len(rep.Remaps()))
	}
	if len(rep.Recoveries) > 0 {
		fmt.Printf("crash recoveries: %d\n", len(rep.Recoveries))
		for _, rc := range rep.Recoveries {
			fmt.Printf("  iter %d: ranks %v died, %v survive (epoch %d); rolled back %d iters to %d, "+
				"detected in %v, restored %d bytes in %v\n",
				rc.Iter, rc.Dead, rc.Active, rc.Epoch, rc.RollbackDepth, rc.RestoredIter,
				rc.DetectLatency.Round(time.Microsecond), rc.RestoredBytes, rc.Duration.Round(time.Microsecond))
		}
	}
	if len(rep.Members) > 0 {
		var moved int64
		for _, ev := range rep.Members {
			moved += ev.MovedBytes
		}
		fmt.Printf("membership transitions: %d (migrated %d bytes)\n", len(rep.Members), moved)
	}
}
