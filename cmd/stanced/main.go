// Command stanced is the STANCE job service daemon: it owns a fixed
// pool of worker ranks and serves an HTTP API that runs many
// independent computations on it concurrently. Jobs queue when the
// pool is full; the scheduler uses the elastic membership protocol to
// shrink running jobs and hand the freed ranks to the queue, and every
// job's result is bit-identical to a run alone in a dedicated world.
//
//	stanced -addr :8080 -pool 8
//	curl -s localhost:8080/v1/jobs -d '{"graph":{"kind":"honeycomb","rows":20,"cols":30},"iters":100,"ranks":4}'
//	curl -s localhost:8080/metrics
//
// With -virtual the whole service — jobs, deadlines, metrics
// timestamps — runs on a deterministic simulated clock; combine with
// per-job compute_cost_ns to model hours of cluster time in wall
// milliseconds.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stance/internal/comm"
	"stance/internal/jobsvc"
	"stance/internal/vtime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stanced: ")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	pool := flag.Int("pool", 4, "worker pool size (ranks)")
	transport := flag.String("transport", "inproc", "comm transport: "+strings.Join(comm.Transports(), ", "))
	latency := flag.Duration("latency", 0, "modeled per-message network latency")
	bandwidth := flag.Float64("bandwidth", 0, "modeled network bandwidth in bytes/s (0 = infinite)")
	delay := flag.Duration("delay", 0, "modeled one-way delivery delay (inproc transport only)")
	maxJobs := flag.Int("max-jobs", 0, "max concurrently running jobs (0 = pool size)")
	maxRanks := flag.Int("max-ranks", 0, "max ranks one job may request (0 = pool size)")
	queue := flag.Int("queue", 64, "admission queue depth (backpressure beyond it)")
	virtual := flag.Bool("virtual", false, "run the pool on the simulated clock (inproc transport only)")
	flushPeriod := flag.Duration("flush", 0, "tcp tx batching linger for the pool mesh (0 = flush immediately)")
	batchBytes := flag.Int("batch", 0, "tcp tx batch cap in bytes (0 = transport default)")
	compress := flag.String("compress", "", "tcp per-batch compression codec: none, flate or gzip")
	hbInterval := flag.Duration("hb", 0, "tcp heartbeat interval for transport-level liveness (0 = off)")
	hbMiss := flag.Int("hb-miss", 0, "consecutive missed tcp heartbeats before a peer is declared dead (0 = default)")
	flag.Parse()

	if *virtual && *transport != "inproc" {
		log.Fatalf("-virtual requires the inproc transport (real %s sockets deliver on the wall clock, which a simulated clock cannot see)", *transport)
	}
	var clock vtime.Clock
	if *virtual {
		clock = vtime.NewSim()
	}
	var model *comm.Model
	if *latency > 0 || *bandwidth > 0 || *delay > 0 {
		model = &comm.Model{Latency: *latency, Bandwidth: *bandwidth, Delay: *delay}
	}
	var tuning *comm.TransportOptions
	if *flushPeriod > 0 || *batchBytes > 0 || *compress != "" || *hbInterval > 0 || *hbMiss > 0 {
		tuning = &comm.TransportOptions{
			FlushPeriod:       *flushPeriod,
			BatchBytes:        *batchBytes,
			Compression:       *compress,
			HeartbeatInterval: *hbInterval,
			HeartbeatMiss:     *hbMiss,
		}
		if err := tuning.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	svc, err := jobsvc.New(jobsvc.Config{
		PoolRanks:      *pool,
		Transport:      *transport,
		Model:          model,
		Clock:          clock,
		MaxConcurrent:  *maxJobs,
		MaxRanksPerJob: *maxRanks,
		QueueDepth:     *queue,
		Tuning:         tuning,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	log.Printf("pool of %d %s ranks, serving on %s", *pool, *transport, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining", s)
	case err := <-done:
		log.Printf("serve: %v", err)
	}

	// Stop taking requests, then cancel every job and close the pool.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("service close: %v", err)
	}
	log.Printf("bye")
}
