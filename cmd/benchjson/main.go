// Command benchjson converts a `go test -json -bench` stream on stdin
// into the bench.json summary on stdout — the format CI uploads as a
// workflow artifact and BENCH_baseline.json snapshots in the repo:
//
//	go test -bench=. -benchtime=1x -run='^$' -json ./... | benchjson > bench.json
package main

import (
	"log"
	"os"

	"stance/internal/benchjson"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	sum, err := benchjson.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(sum.Benchmarks) == 0 {
		log.Fatal("no benchmark results on stdin (pipe `go test -json -bench=...` output in)")
	}
	if err := sum.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
