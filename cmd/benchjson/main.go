// Command benchjson converts a `go test -json -bench` stream on stdin
// into the bench.json summary on stdout — the format CI uploads as a
// workflow artifact and BENCH_baseline.json snapshots in the repo:
//
//	go test -bench=. -benchtime=1x -run='^$' -json ./... | benchjson > bench.json
//
// With -compare it becomes the regression gate instead: it reads two
// summaries and exits non-zero if any benchmark got slower (ns/op) or
// allocates more (allocs/op) beyond the tolerance:
//
//	benchjson -compare BENCH_baseline.json bench.json -tolerance 10%
//
// Benchmarks present in only one file are ignored, and a zero-alloc
// baseline tolerates no increase at all regardless of tolerance.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"stance/internal/benchjson"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  go test -json -bench=... | benchjson > bench.json
  benchjson -compare old.json new.json [-tolerance 10%%]
`)
	os.Exit(2)
}

// parseArgs scans the command line by hand so -tolerance may appear
// before or after the two file operands (the flag package would stop
// at the first operand).
func parseArgs(args []string) (compare bool, tol string, files []string) {
	tol = "10%"
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-compare" || a == "--compare":
			compare = true
		case a == "-tolerance" || a == "--tolerance":
			i++
			if i >= len(args) {
				usage()
			}
			tol = args[i]
		case strings.HasPrefix(a, "-tolerance="), strings.HasPrefix(a, "--tolerance="):
			tol = a[strings.IndexByte(a, '=')+1:]
		case a == "-h" || a == "-help" || a == "--help":
			usage()
		case strings.HasPrefix(a, "-") && a != "-":
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %q\n", a)
			usage()
		default:
			files = append(files, a)
		}
	}
	return compare, tol, files
}

func readSummary(path string) *benchjson.Summary {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sum, err := benchjson.Read(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return sum
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	compare, tolStr, files := parseArgs(os.Args[1:])

	if compare {
		if len(files) != 2 {
			usage()
		}
		tol, err := benchjson.ParseTolerance(tolStr)
		if err != nil {
			log.Fatal(err)
		}
		base, cur := readSummary(files[0]), readSummary(files[1])
		regs := benchjson.Compare(base, cur, tol)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "regression:", r)
			}
			log.Fatalf("%d benchmark regression(s) beyond %s vs %s; investigate, or refresh the baseline if the change is intentional",
				len(regs), tolStr, files[0])
		}
		fmt.Printf("benchjson: no regressions beyond %s across %d benchmarks (%s vs %s)\n",
			tolStr, len(cur.Benchmarks), files[0], files[1])
		return
	}
	if len(files) != 0 {
		usage()
	}

	sum, err := benchjson.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(sum.Benchmarks) == 0 {
		log.Fatal("no benchmark results on stdin (pipe `go test -json -bench=...` output in)")
	}
	if err := sum.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
