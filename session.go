package stance

import (
	"context"
	"time"

	"stance/internal/ckpt"
	"stance/internal/comm"
	"stance/internal/hetero"
	"stance/internal/session"
	"stance/internal/vtime"
)

// Session-layer types, re-exported from the internal orchestration
// package. A Session owns a World plus the per-rank runtime, solver and
// balancer stack, and its Run method drives the paper's per-phase
// iterate → measure → balance-check → remap protocol.
type (
	// Session is the one-call orchestration handle; see NewSession.
	Session = session.Session
	// SessionConfig is the resolved configuration functional options
	// build. Most callers never touch it directly.
	SessionConfig = session.Config
	// RunReport is the consolidated result of one Session.Run.
	RunReport = session.RunReport
	// CheckEvent is one load-balance check recorded in a RunReport.
	CheckEvent = session.CheckEvent
	// MembershipEvent is one committed membership transition recorded
	// in a RunReport: the new epoch, who left and joined, and the
	// migration byte count.
	MembershipEvent = session.MembershipEvent
	// CheckpointConfig enables crash-stop fault tolerance; see
	// WithCheckpoint.
	CheckpointConfig = ckpt.Config
	// Kill is one injected crash in a CheckpointConfig: the rank goes
	// permanently silent at the first checkpoint gate at or after the
	// given iteration.
	Kill = ckpt.Kill
	// RecoveryEvent is one completed crash recovery recorded in a
	// RunReport: who died, who survived, how far the survivors rolled
	// back and what detection and restoration cost.
	RecoveryEvent = ckpt.RecoveryEvent
	// Outage is an availability window during which a workstation
	// leaves the computation entirely; see WithAvailability.
	Outage = hetero.Outage
	// Trace is a piecewise-constant schedule of one workstation's
	// delivered capability — the adaptive environment as a time series;
	// a zero-capability step takes the workstation away entirely.
	Trace = hetero.Trace
	// TraceStep is one segment of a Trace.
	TraceStep = hetero.TraceStep
	// Clock is the runtime's time source; see WithClock.
	Clock = vtime.Clock
	// SimClock is the deterministic discrete-event clock. Build one
	// with NewSimClock and pass it to WithClock to run a session in
	// virtual time.
	SimClock = vtime.Sim
	// RankUsage is one rank's accumulated timings in a RunReport.
	RankUsage = session.RankUsage
	// World is a first-class SPMD world: endpoints plus shared
	// lifecycle, built from a registered transport.
	World = comm.World
	// Topology assigns every rank to a node group — the two-level
	// structure of a nonuniform network. See WithGroups and
	// WithTopology.
	Topology = comm.Topology
	// TransportConfig is the legacy flat transport configuration.
	//
	// Deprecated: use TransportOptions (see WithTransportTuning and
	// OpenWorldOptions); the shim converts with its Options method.
	TransportConfig = comm.TransportConfig
	// TransportOptions is the composable transport configuration:
	// model, clock, and the wire tuning (batching, compression,
	// heartbeat liveness, outbox bounds, mesh deadlines).
	TransportOptions = comm.TransportOptions
	// TransportStats are the wire counters a socket transport
	// accumulates (framed writes, wire bytes, missed heartbeats,
	// backpressure stalls); RunReport.Transport carries the per-run
	// delta.
	TransportStats = comm.TransportStats
	// TransportFactory builds the endpoints of a world; register one
	// with RegisterTransport to plug in a new backend by name.
	TransportFactory = comm.TransportFactory
)

// ErrUnrecoverable marks a rank failure the checkpoint protocol cannot
// recover from (the coordinator died, or a rank and its checkpoint
// buddy died inside one detection window). Session.Run errors wrap it;
// test with errors.Is.
var ErrUnrecoverable = ckpt.ErrUnrecoverable

// Option configures NewSession.
type Option func(*session.Config)

// WithTransport selects a registered comm transport by name ("inproc"
// or "tcp" are built in; see RegisterTransport). The default is
// "inproc".
func WithTransport(name string) Option {
	return func(c *session.Config) { c.Transport = name }
}

// WithNetworkModel sets the network cost model for modeled transports
// (the in-process transport; the TCP transport runs over real sockets
// and ignores it). The default is a free network; Ethernet(scale)
// reproduces the paper's 10 Mbit shared medium.
func WithNetworkModel(m *NetworkModel) Option {
	return func(c *session.Config) { c.Model = m }
}

// WithTransportTuning tunes the wire transport the session opens:
// batching flush period and batch cap, per-batch compression codec,
// heartbeat interval and miss budget (transport-level failure
// detection feeding the checkpoint gate), outbox high-water mark, and
// mesh dial/accept deadlines. Zero fields mean library defaults. The
// tuning's Model and Clock must stay nil — set them with
// WithNetworkModel and WithClock; NewSession fails loudly otherwise.
// The in-process transport has no wire and ignores the tuning.
//
//	s, err := stance.NewSession(ctx, g, 4,
//	    stance.WithTransport("tcp"),
//	    stance.WithTransportTuning(stance.TransportOptions{
//	        FlushPeriod:       200 * time.Microsecond,
//	        Compression:       "flate",
//	        HeartbeatInterval: 25 * time.Millisecond,
//	    }))
func WithTransportTuning(o TransportOptions) Option {
	return func(c *session.Config) { c.Tuning = &o }
}

// WithGroups declares a two-level cluster: the session's ranks split
// into n contiguous, near-equal node groups joined by a slower shared
// link (the paper's Section 4 nonuniform network). Every
// hierarchy-aware layer engages: the transport prices and counts
// inter-group traffic separately (RunReport.InterMsgs/InterBytes), the
// partitioner cuts across group boundaries first and refines them to
// minimize slow-link traffic, and a decentralized balancer exchanges
// reports through group leaders — O(groups) slow-link messages per
// check instead of O(P). Combine with WithInterModel to make the
// inter-group link actually slower:
//
//	s, err := stance.NewSession(ctx, g, 8,
//	    stance.WithGroups(2),
//	    stance.WithNetworkModel(stance.Ethernet(1)),
//	    stance.WithInterModel(stance.Ethernet(10)))
func WithGroups(n int) Option {
	return func(c *session.Config) { c.Groups = n }
}

// WithTopology sets the rank → node-group assignment directly, for
// clusters whose groups are not equal contiguous blocks. Build one
// with NewTopology or ContiguousGroups. Mutually exclusive with
// WithGroups.
func WithTopology(t *Topology) Option {
	return func(c *session.Config) { c.Topology = t }
}

// WithInterModel sets the cost model for messages crossing group
// boundaries — the knob that makes the network nonuniform. Requires
// WithGroups or WithTopology; without it inter-group traffic is priced
// on the ordinary network model like everything else.
func WithInterModel(m *NetworkModel) Option {
	return func(c *session.Config) { c.InterModel = m }
}

// WithFlatCut keeps the two-level pricing and leader-aggregated checks
// but cuts the partition flat, ignoring group boundaries — the control
// arm for measuring what the hierarchy-aware cut is worth.
func WithFlatCut() Option {
	return func(c *session.Config) { c.FlatCut = true }
}

// WithFlatReports keeps the hierarchy-aware cut but exchanges balance
// reports by flat all-gather instead of through group leaders — the
// control arm for measuring the leader aggregation.
func WithFlatReports() Option {
	return func(c *session.Config) { c.FlatReports = true }
}

// WithClock sets the session's time source. Everything temporal —
// network charges, delivery delays, solver and balancer measurement,
// RecvTimeout deadlines, the RunReport's durations — runs on it. Pass
// NewSimClock() to run the session in deterministic virtual time: an
// adaptive scenario that would take minutes of wall time finishes in
// milliseconds, and the same clock and configuration produce a
// byte-identical report every run. Virtual time requires the
// in-process transport; combine with WithVirtualCompute so compute
// costs virtual time instead of real work. The default is the real
// clock.
//
//	clk := stance.NewSimClock()
//	s, err := stance.NewSession(ctx, g, 4,
//	    stance.WithClock(clk),
//	    stance.WithVirtualCompute(10*time.Microsecond),
//	    stance.WithNetworkModel(&stance.NetworkModel{Delay: 5 * time.Millisecond}))
func WithClock(clk Clock) Option {
	return func(c *session.Config) { c.Clock = clk }
}

// WithVirtualCompute virtualizes the solver's compute: each element
// charges perItem × WorkRep × WorkFactor to the session clock per
// iteration instead of spinning the kernel that many times. The
// numerical result is unchanged. On a simulated clock this makes
// heterogeneity an exact, instant quantity; on the real clock it
// emulates compute by sleeping.
func WithVirtualCompute(perItem time.Duration) Option {
	return func(c *session.Config) { c.ComputeCost = perItem }
}

// WithOrdering selects the Phase A locality transformation by name:
// "identity", "random", "rcb", "rib", "morton", "hilbert", "rcm" or
// "spectral". The default is identity.
func WithOrdering(name string) Option {
	return func(c *session.Config) { c.OrderName = name; c.Order = nil }
}

// WithOrderFunc sets the locality transformation directly (for example
// stance.RCB, or a custom order.Func).
func WithOrderFunc(f OrderFunc) Option {
	return func(c *session.Config) { c.Order = f; c.OrderName = "" }
}

// WithWeights sets the initial relative processor capabilities; the
// length must equal the world size. The default is uniform.
func WithWeights(w ...float64) Option {
	return func(c *session.Config) { c.Weights = w }
}

// WithVertexWeights sets per-vertex computational weights in original
// vertex numbering, so intervals balance total weight instead of
// vertex counts. A common choice is the vertex degree.
func WithVertexWeights(w []float64) Option {
	return func(c *session.Config) { c.VertexWeights = w }
}

// WithStrategy selects the Phase B inspector variant (StrategySort2,
// StrategySort1 or StrategySimple).
func WithStrategy(s Strategy) Option {
	return func(c *session.Config) { c.Strategy = s }
}

// WithRemapPolicy selects the arrangement search used on remaps
// (RemapMCRIterated, RemapMCR or RemapKeepArrangement).
func WithRemapPolicy(p RemapPolicy) Option {
	return func(c *session.Config) { c.RemapPolicy = p }
}

// WithBalancer enables Phase D adaptive load balancing with the given
// configuration; Session.Run then checks every CheckEvery iterations
// and remaps when profitable. A zero Horizon defaults to the check
// interval.
func WithBalancer(cfg BalancerConfig) Option {
	return func(c *session.Config) { c.Balancer = &cfg }
}

// WithEnv simulates a nonuniform/adaptive cluster: per-rank speeds,
// competing loads and availability outages shape the run. Outages in
// the environment enable the elastic membership protocol. The default
// is uniform, unloaded and always available.
func WithEnv(env *Env) Option {
	return func(c *session.Config) { c.Env = env }
}

// WithAvailability adds availability windows during which workstations
// leave the computation entirely — the adaptive environment's "machine
// taken away and given back". Any outage enables the elastic
// membership protocol: at each check boundary the coordinator (rank 0,
// which cannot have outages) retires the ranks that went away —
// migrating their intervals onto the survivors and parking them — and
// re-admits ranks whose outage ended. The outages merge into the
// configured environment (a uniform one is synthesized if none is
// set).
func WithAvailability(outages ...Outage) Option {
	return func(c *session.Config) { c.Outages = append(c.Outages, outages...) }
}

// WithElastic enables the elastic membership protocol even without
// availability outages, so Session.Resize can shrink and grow the
// active rank set explicitly while the session runs.
func WithElastic() Option {
	return func(c *session.Config) { c.Elastic = true }
}

// WithCheckpoint enables crash-stop fault tolerance (which implies the
// elastic membership protocol). At every Run start and check boundary
// the active ranks pass a checkpoint gate: each sends a heartbeat to
// the coordinator, which collects them under cfg.DetectTimeout and
// multicasts a verdict. When all answer, every rank snapshots its
// vector intervals and solver iteration and mirrors the snapshot to
// its buddy (the next active rank in ring order). When a rank goes
// silent, the survivors re-cut its intervals, restore the last
// checkpoint — the dead rank's state replayed by its buddy — roll the
// solver back and continue; the final result is bit-identical to a run
// that never failed, and the RunReport records a RecoveryEvent. A
// failure that cannot be recovered (the coordinator died, or a rank
// and its buddy died together) fails the Run loudly with an error
// wrapping ErrUnrecoverable — never a hang. cfg.Kills injects
// deterministic crashes for testing:
//
//	s, err := stance.NewSession(ctx, g, 4,
//	    stance.WithClock(stance.NewSimClock()),
//	    stance.WithVirtualCompute(10*time.Microsecond),
//	    stance.WithCheckpoint(stance.CheckpointConfig{
//	        DetectTimeout: 50 * time.Millisecond,
//	        Kills:         []stance.Kill{{Rank: 2, Iter: 30}},
//	    }))
//	report, err := s.Run(60) // rank 2 dies at iteration 30; report.Recoveries has the story
func WithCheckpoint(cfg CheckpointConfig) Option {
	return func(c *session.Config) { c.Checkpoint = &cfg }
}

// WithOnMembership registers a callback invoked on rank 0 immediately
// after each committed membership transition (the consolidated
// RunReport still records every transition). The callback runs inside
// the SPMD section; keep it cheap and do not call back into the
// session.
func WithOnMembership(f func(MembershipEvent)) Option {
	return func(c *session.Config) { c.OnMembership = f }
}

// WithOverlap runs the executor split-phase (Phase C′): each iteration
// posts its ghost exchange with ExchangeStart, computes the interior
// elements — which reference no ghost value — while the messages are
// in flight, then drains the arrivals with the handle's Wait and
// computes the boundary strip. The numerical result is bit-for-bit
// identical to the synchronous executor; on a latency-bound network
// the interior sweep hides the message flight time.
// RunReport.Exec.Overlapped counts the split-phase operations and
// RunReport.Exec.Idle is the latency the overlap failed to hide. The
// kernel must support the boundary split (SubsetKernel; the built-in
// Figure8 does) — NewSession fails loudly otherwise instead of
// silently running synchronously. Mutually exclusive with
// WithPipeline.
func WithOverlap() Option {
	return func(c *session.Config) { c.Overlap = true }
}

// WithPipeline software-pipelines the solver on op handles: every
// field's ghost exchange is a live handle at once, and at depth >= 2
// the pipeline spans iteration boundaries — a field's next exchange is
// posted as soon as its update completes, so its flight time hides
// behind the other fields' compute. The numerical result stays
// bit-for-bit identical; RunReport.Exec.Pipelined counts the
// operations issued while another was already in flight. Like
// WithOverlap it requires a SubsetKernel and fails loudly at
// NewSession otherwise; the two options are mutually exclusive
// (pipelining subsumes the overlap). Combine with WithFields to give
// the pipeline independent exchanges to keep in flight:
//
//	s, err := stance.NewSession(ctx, g, 4,
//	    stance.WithFields(2),
//	    stance.WithPipeline(2))
func WithPipeline(depth int) Option {
	return func(c *session.Config) { c.Pipeline = depth }
}

// WithFields makes the solver advance n independent solution fields
// per iteration (default 1). Field 0 is the solution vector Result
// returns, so existing results are unchanged; the extra fields give
// the pipelined executor independent exchanges to keep in flight.
func WithFields(n int) Option {
	return func(c *session.Config) { c.Fields = n }
}

// WithKernel replaces the solver's compute body (the built-in Figure8
// kernel by default). With WithOverlap or WithPipeline the kernel must
// implement SubsetKernel.
func WithKernel(k Kernel) Option {
	return func(c *session.Config) { c.Kernel = k }
}

// WithWorkRep sets the kernel work amplification per element, keeping
// the compute-to-communication ratio of the paper's SUN4 + Ethernet
// setting reproducible on modern hardware. The default is 1.
func WithWorkRep(n int) Option {
	return func(c *session.Config) { c.WorkRep = n }
}

// WithCheckEvery sets the number of iterations between load-balance
// checks (default 10, the paper's protocol).
func WithCheckEvery(n int) Option {
	return func(c *session.Config) { c.CheckEvery = n }
}

// WithRootComputesOrder makes rank 0 compute the locality ordering and
// broadcast it instead of every rank computing it independently.
func WithRootComputesOrder() Option {
	return func(c *session.Config) { c.RootComputesOrder = true }
}

// WithOnCheck registers a callback invoked on rank 0 immediately after
// each balance check, for live progress output during long runs (the
// consolidated RunReport still records every check). The callback runs
// inside the SPMD section; keep it cheap and do not call back into the
// session.
func WithOnCheck(f func(CheckEvent)) Option {
	return func(c *session.Config) { c.OnCheck = f }
}

// NewSession builds a ready-to-run session on procs ranks: it opens
// the world on the configured transport, transforms and partitions g,
// and constructs the solver (and balancer, if configured) on every
// rank. ctx governs the whole session — cancelling it unblocks any
// pending communication with context.Canceled instead of deadlocking.
// Close the session when done.
//
//	s, err := stance.NewSession(ctx, g, 4,
//	    stance.WithOrdering("rcb"),
//	    stance.WithNetworkModel(stance.Ethernet(0.1)),
//	    stance.WithBalancer(stance.BalancerConfig{}))
//	report, err := s.Run(100)
func NewSession(ctx context.Context, g *Graph, procs int, opts ...Option) (*Session, error) {
	cfg := session.Config{Procs: procs}
	for _, opt := range opts {
		opt(&cfg)
	}
	return session.New(ctx, g, cfg)
}

// NewSimClock returns a deterministic discrete-event clock for
// WithClock: virtual time advances only when every rank is blocked,
// jumping straight to the next due event, so simulated hours cost
// real milliseconds and identical runs produce identical timings.
func NewSimClock() *SimClock { return vtime.NewSim() }

// OpenWorld builds a World of p ranks on a registered transport (""
// selects "inproc"); model prices messages on modeled transports (nil
// means free). Most callers want NewSession instead and never touch
// the world directly.
func OpenWorld(transport string, p int, model *NetworkModel) (*World, error) {
	return comm.Open(transport, p, comm.TransportOptions{Model: model})
}

// OpenWorldOptions is OpenWorld with the full transport options —
// model, clock and wire tuning — validated at open.
func OpenWorldOptions(transport string, p int, o TransportOptions) (*World, error) {
	return comm.Open(transport, p, o)
}

// RegisterTransport makes a message-passing backend available to
// OpenWorld and WithTransport under the given name.
func RegisterTransport(name string, factory TransportFactory) {
	comm.RegisterTransport(name, factory)
}

// Transports lists the registered transport names.
func Transports() []string { return comm.Transports() }
