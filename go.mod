module stance

go 1.24
