module stance

go 1.23
