// Package stance is a Go reproduction of the STANCE runtime library
// from "Runtime Support for Parallelization of Data-Parallel
// Applications on Adaptive and Nonuniform Computational Environments"
// (Kaddoura & Ranka, Syracuse University, 1995).
//
// STANCE parallelizes iterative, unstructured data-parallel
// applications — the canonical example is a sparse neighbor-averaging
// loop over an unstructured mesh — on clusters whose machines differ
// in speed (nonuniform) and whose delivered speeds change during the
// run (adaptive). The library is organized around the paper's four
// phases:
//
//   - Phase A, data partitioning: a locality-preserving transformation
//     maps the computational graph to a one-dimensional list, so
//     partitioning for any capability vector is just cutting the list
//     into contiguous intervals (see Orderings).
//   - Phase B, inspector: off-processor references are deduplicated
//     and turned into communication schedules, either with zero
//     communication by exploiting access symmetry (schedule_sort1/2)
//     or through a distributed translation table (the baseline).
//   - Phase C, executor: Exchange and ScatterAdd replay the schedules
//     to move ghost data each iteration.
//   - Phase D, load balancing: measured per-item compute rates feed a
//     centralized controller that remaps data when the predicted gain
//     beats the redistribution cost, choosing the new arrangement with
//     the MinimizeCostRedistribution heuristic.
//
// The shortest path into the library is the session API: NewSession
// builds a world on a named transport, partitions the mesh and wires
// the solver and balancer on every rank; Session.Run drives the
// iterate → measure → balance-check → remap protocol and returns a
// consolidated RunReport. See examples/quickstart.
//
//	s, err := stance.NewSession(ctx, g, 4, stance.WithOrdering("rcb"))
//	report, err := s.Run(100)
//
// Below that sits the World/transport layer (OpenWorld,
// RegisterTransport) and the low-level collective API (New, NewSolver,
// NewBalancer) for callers that need to own the SPMD loop themselves.
// See examples/ for runnable programs and DESIGN.md for the full
// architecture.
package stance

import (
	"stance/internal/comm"
	"stance/internal/core"
	"stance/internal/graph"
	"stance/internal/hetero"
	"stance/internal/loadbal"
	"stance/internal/mesh"
	"stance/internal/order"
	"stance/internal/partition"
	"stance/internal/redist"
	"stance/internal/solver"
)

// Re-exported core types. The aliases expose the internal
// implementations as the public API surface.
type (
	// Comm is one rank's endpoint in an SPMD world.
	Comm = comm.Comm
	// NetworkModel emulates a shared-medium network's latency and
	// bandwidth for in-process worlds.
	NetworkModel = comm.Model
	// Graph is an undirected computational graph in CSR form.
	Graph = graph.Graph
	// Edge is an undirected graph edge.
	Edge = graph.Edge
	// Config parameterizes the runtime.
	Config = core.Config
	// Runtime is one rank's view of the distributed computation.
	Runtime = core.Runtime
	// Vector is a distributed array with a ghost section.
	Vector = core.Vector
	// RemapStats reports what a redistribution moved and cost.
	RemapStats = core.RemapStats
	// Strategy selects the inspector variant.
	Strategy = core.Strategy
	// RemapPolicy selects the arrangement search used on remaps.
	RemapPolicy = core.RemapPolicy
	// Layout assigns contiguous intervals of the one-dimensional list
	// to processors.
	Layout = partition.Layout
	// Interval is a half-open range of global indices.
	Interval = partition.Interval
	// Env describes a simulated nonuniform/adaptive cluster.
	Env = hetero.Env
	// Load is a competing load on one workstation.
	Load = hetero.Load
	// Solver runs the paper's Figure 8 irregular loop.
	Solver = solver.Solver
	// Timings are the solver's accumulated per-rank measurements.
	Timings = solver.Timings
	// Kernel is the solver's per-iteration compute body.
	Kernel = solver.Kernel
	// SubsetKernel is a kernel with the interior/boundary split the
	// overlapped and pipelined executor modes (WithOverlap,
	// WithPipeline) require.
	SubsetKernel = solver.SubsetKernel
	// OpHandle is one in-flight split-phase executor operation; Start
	// calls on the Runtime return one and its Wait completes the op.
	OpHandle = core.OpHandle
	// Figure8 is the paper's default kernel, split-capable.
	Figure8 = solver.Figure8
	// Figure8Fused is the same computation without a boundary split —
	// the A/B partner for attributing overlap speedups; it cannot run
	// overlapped.
	Figure8Fused = solver.Figure8Fused
	// ExecStats counts the executor data path's traffic, including the
	// overlapped/pipelined modes' Overlapped/Pipelined/Idle counters.
	ExecStats = core.ExecStats
	// Balancer drives the periodic load-balance check.
	Balancer = loadbal.Balancer
	// BalancerConfig parameterizes the balancer.
	BalancerConfig = loadbal.Config
	// Report is one rank's load report.
	Report = loadbal.Report
	// Decision is the controller's load-balancing verdict.
	Decision = loadbal.Decision
	// CostModel prices redistributions for profitability decisions.
	CostModel = redist.CostModel
	// OrderFunc computes a locality-preserving permutation.
	OrderFunc = order.Func
	// Estimator predicts next-phase rates from measurement history.
	Estimator = loadbal.Estimator
	// EstimatorKind selects the rate-prediction policy.
	EstimatorKind = loadbal.EstimatorKind
)

// Rate-estimation policies (the paper's "predict from more than one
// previous phase" extension).
const (
	EstimateLast = loadbal.EstimateLast
	EstimateEWMA = loadbal.EstimateEWMA
	EstimateMax  = loadbal.EstimateMax
)

// NewEstimator creates a rate estimator for BalancerConfig.Estimator.
func NewEstimator(kind EstimatorKind, alpha float64) (*Estimator, error) {
	return loadbal.NewEstimator(kind, alpha)
}

// Inspector strategies (paper Table 3).
const (
	StrategySort2  = core.StrategySort2
	StrategySort1  = core.StrategySort1
	StrategySimple = core.StrategySimple
)

// Remap policies (paper Section 3.4).
const (
	RemapMCRIterated     = core.RemapMCRIterated
	RemapMCR             = core.RemapMCR
	RemapKeepArrangement = core.RemapKeepArrangement
)

// NewWorld creates an in-process SPMD world of p ranks whose messages
// cost according to model (nil = free network).
//
// Legacy constructor: it returns raw endpoints without the shared
// lifecycle. Prefer OpenWorld("inproc", p, model), which returns a
// *World with context-aware SPMD and idempotent Close.
func NewWorld(p int, model *NetworkModel) ([]*Comm, error) {
	return comm.NewWorld(p, model)
}

// NewTCPWorld creates a world connected by loopback TCP sockets; the
// returned closer shuts the mesh down.
//
// Legacy constructor: prefer OpenWorld("tcp", p, nil).
func NewTCPWorld(p int) ([]*Comm, func() error, error) {
	return comm.NewTCPWorld(p)
}

// Ethernet models the paper's 10 Mbit shared Ethernet; scale < 1
// speeds it up proportionally.
func Ethernet(scale float64) *NetworkModel {
	return comm.Ethernet(scale)
}

// NewTopology builds a rank → node-group assignment for WithTopology.
// Group ids must be a contiguous range 0..G-1 with every group
// non-empty.
func NewTopology(groupOf []int) (*Topology, error) {
	return comm.NewTopology(groupOf)
}

// ContiguousGroups builds the even block topology: p ranks split into
// the given number of contiguous, near-equal node groups — what
// WithGroups constructs internally.
func ContiguousGroups(p, groups int) (*Topology, error) {
	return comm.ContiguousGroups(p, groups)
}

// SPMD runs f once per rank, each in its own goroutine, and joins all
// errors. Legacy entry point: World.SPMD additionally threads a
// context through every rank's blocking operations.
func SPMD(comms []*Comm, f func(c *Comm) error) error {
	return comm.SPMD(comms, f)
}

// CloseWorld closes every endpoint in a world. Legacy: World.Close
// also releases transport-shared resources and is idempotent.
func CloseWorld(comms []*Comm) error {
	return comm.CloseWorld(comms)
}

// New builds the runtime collectively on every rank.
func New(c *Comm, g *Graph, cfg Config) (*Runtime, error) {
	return core.New(c, g, cfg)
}

// NewSolver creates the Figure 8 solver on a runtime; env may be nil.
func NewSolver(rt *Runtime, env *Env, workRep int) (*Solver, error) {
	return solver.New(rt, env, workRep)
}

// NewBalancer creates the adaptive load balancer bound to a runtime.
func NewBalancer(rt *Runtime, cfg BalancerConfig) (*Balancer, error) {
	return loadbal.New(rt, cfg)
}

// UniformEnv returns p equally fast, unloaded workstations.
func UniformEnv(p int) *Env { return hetero.Uniform(p) }

// LoadedEnv returns p workstations with a constant competing load of
// the given factor on workstation 0 — the paper's Table 5 scenario.
func LoadedEnv(p int, factor float64) *Env { return hetero.PaperAdaptive(p, factor) }

// OrderByName returns a locality ordering by name: "identity",
// "random", "rcb", "rib", "morton", "hilbert", "rcm" or "spectral".
func OrderByName(name string) (OrderFunc, error) { return order.ByName(name) }

// Orderings lists the available ordering names.
func Orderings() []string { return order.Names() }

// RCB is recursive coordinate bisection, the ordering used throughout
// the paper's figures.
var RCB = order.RCB

// Mesh generators (package mesh): the paper's evaluation mesh is not
// available, so PaperMesh builds a honeycomb matched to its 30269
// vertices and ~45k edges.
var (
	PaperMesh       = mesh.Paper
	Honeycomb       = mesh.Honeycomb
	GridMesh        = mesh.GridTriangulated
	AnnulusMesh     = mesh.Annulus
	RandomGeometric = mesh.RandomGeometric
)

// GraphFromEdges builds a validated CSR graph from an edge list.
var GraphFromEdges = graph.FromEdges
