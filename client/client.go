// Package client is the Go client for a stanced job service: submit
// job specs over the HTTP API, poll status, cancel, and read the
// service metrics. It speaks the wire format of internal/jobsvc and
// re-exports its request/response types, so a caller needs only this
// package and a server address.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"stance/internal/jobsvc"
)

// Re-exported wire types: a Spec goes up on submit, a Status comes
// back on every read, Metrics is the service-wide accounting.
type (
	Spec      = jobsvc.Spec
	GraphSpec = jobsvc.GraphSpec
	Status    = jobsvc.Status
	Metrics   = jobsvc.Metrics
	State     = jobsvc.State
)

// Job states, mirrored from the service.
const (
	Queued   = jobsvc.Queued
	Running  = jobsvc.Running
	Done     = jobsvc.Done
	Failed   = jobsvc.Failed
	Canceled = jobsvc.Canceled
)

// Client talks to one stanced server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://localhost:8080"). A trailing slash is tolerated.
func New(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: &http.Client{}}
}

// apiError is the server's {"error": "..."} body.
type apiError struct {
	Error string `json:"error"`
}

// do issues one request and decodes the JSON response into out (nil
// to discard). Non-2xx responses come back as errors carrying the
// server's message.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ae apiError
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			return fmt.Errorf("stanced: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("stanced: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit sends a job spec and returns the accepted job's status (its
// ID in particular). Queue backpressure surfaces as an HTTP 429 error.
func (c *Client) Submit(ctx context.Context, spec Spec) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job returns one job's status.
func (c *Client) Job(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List returns every job the server knows, oldest first.
func (c *Client) List(ctx context.Context) ([]*Status, error) {
	var sts []*Status
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &sts); err != nil {
		return nil, err
	}
	return sts, nil
}

// Cancel asks the server to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Metrics reads the service-wide accounting.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Wait polls every interval until the job reaches a terminal state
// (done, failed or canceled) and returns its final status. It stops
// early with ctx's error if the context ends first.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*Status, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Finished() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
	}
}
